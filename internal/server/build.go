package server

import (
	"fmt"
	"strings"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/lrb"
	"github.com/scip-cache/scip/internal/shard"
)

// BuildSharded returns a sharded cache front for one of the
// concurrency-ready policies (SCIP, SCI, LRU, LRB). Each shard gets its
// own single-threaded policy instance seeded by seed + shard index, so a
// given (policy, capacity, shards, seed) tuple always produces the same
// decision stream — the property the scip-load and scip-serve
// comparisons rest on. Both commands build their cache through this one
// function. opts selects the shard concurrency configuration
// (shard.WithMode, shard.WithActorDepth); the decision stream is
// identical in every mode.
func BuildSharded(policy string, capBytes int64, shards int, seed int64, opts ...shard.Option) (*shard.Cache, error) {
	var build shard.Builder
	name := strings.ToUpper(policy)
	switch name {
	case "SCIP":
		build = func(b int64, s int) cache.Policy {
			return core.NewCache(b, core.WithSeed(seed+int64(s)))
		}
	case "SCI":
		build = func(b int64, s int) cache.Policy {
			return core.NewSCICache(b, core.WithSeed(seed+int64(s)))
		}
	case "LRU":
		build = func(b int64, _ int) cache.Policy { return cache.NewLRU(b) }
	case "LRB":
		build = func(b int64, s int) cache.Policy {
			return lrb.New(b, lrb.WithSeed(seed+int64(s)))
		}
	default:
		return nil, fmt.Errorf("unknown policy %q (want SCIP, SCI, LRU or LRB)", policy)
	}
	return shard.New(fmt.Sprintf("%s-x%d", name, shards), capBytes, shards, build, opts...)
}
