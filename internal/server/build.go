package server

import (
	"fmt"
	"strings"

	"github.com/scip-cache/scip/internal/admission"
	"github.com/scip-cache/scip/internal/admission/scorer"
	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/lrb"
	"github.com/scip-cache/scip/internal/shard"
)

// BuildSharded returns a sharded cache front for one of the
// concurrency-ready policies (SCIP, SCI, LRU, LRB, 2Q, TinyLFU,
// AdaptSize) or a composable "scorer:" admission spec (see
// internal/admission/scorer). Each shard gets its own single-threaded
// policy instance seeded by seed + shard index, so a given (policy,
// capacity, shards, seed) tuple always produces the same decision
// stream — the property the scip-load and scip-serve comparisons rest
// on. Both commands build their cache through this one function. opts
// selects the shard concurrency configuration (shard.WithMode,
// shard.WithActorDepth); the decision stream is identical in every
// mode.
func BuildSharded(policy string, capBytes int64, shards int, seed int64, opts ...shard.Option) (*shard.Cache, error) {
	if scorer.IsSpec(policy) {
		if _, _, _, err := scorer.ParseSpec(policy); err != nil {
			return nil, err
		}
		build := func(b int64, s int) cache.Policy {
			p, err := scorer.FromSpec(policy, b, seed+int64(s))
			if err != nil {
				// Unreachable: the spec was validated above and FromSpec
				// has no other failure mode.
				panic(err)
			}
			return p
		}
		return shard.New(fmt.Sprintf("%s-x%d", policy, shards), capBytes, shards, build, opts...)
	}
	var build shard.Builder
	name := strings.ToUpper(policy)
	switch name {
	case "SCIP":
		build = func(b int64, s int) cache.Policy {
			return core.NewCache(b, core.WithSeed(seed+int64(s)))
		}
	case "SCI":
		build = func(b int64, s int) cache.Policy {
			return core.NewSCICache(b, core.WithSeed(seed+int64(s)))
		}
	case "LRU":
		build = func(b int64, _ int) cache.Policy { return cache.NewLRU(b) }
	case "LRB":
		build = func(b int64, s int) cache.Policy {
			return lrb.New(b, lrb.WithSeed(seed+int64(s)))
		}
	case "2Q":
		build = func(b int64, _ int) cache.Policy { return admission.NewTwoQ(b) }
	case "TINYLFU":
		build = func(b int64, _ int) cache.Policy { return admission.NewTinyLFU(b) }
	case "ADAPTSIZE":
		build = func(b int64, s int) cache.Policy {
			return admission.NewAdaptSize(b, seed+int64(s))
		}
	default:
		return nil, fmt.Errorf("unknown policy %q (want SCIP, SCI, LRU, LRB, 2Q, TinyLFU, AdaptSize or a scorer: spec)", policy)
	}
	return shard.New(fmt.Sprintf("%s-x%d", name, shards), capBytes, shards, build, opts...)
}
