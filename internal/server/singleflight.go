package server

import "sync"

// flightResult is what one fill-chain fetch produced. peer marks a body
// that came from a fleet peer instead of the origin (surfaced as the
// X-Fill response header and the peer_fills_total counter).
type flightResult struct {
	body []byte
	size int64
	err  error
	peer bool
}

// flight is one in-progress fetch; done is closed when res is final.
type flight struct {
	done chan struct{}
	res  flightResult
}

// flightGroup coalesces concurrent fetches of the same key: the first
// caller (the leader) runs fn, later callers block until the leader
// finishes and share its result. Unlike runner.Memo the entry is
// forgotten as soon as the flight lands — this is pure request
// coalescing, not memoisation: the body store is the cache, the flight
// group only collapses a thundering herd of concurrent misses into one
// origin fetch. The server keeps one group per shard so coalescing
// bookkeeping never contends across shards.
type flightGroup struct {
	mu sync.Mutex
	m  map[uint64]*flight //scip:guardedby mu
}

// do runs fn for key, sharing the execution with concurrent callers.
// shared reports whether this caller joined an existing flight instead
// of running fn itself.
func (g *flightGroup) do(key uint64, fn func() flightResult) (res flightResult, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[uint64]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.res, true
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.res = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.res, false
}
