// Package ml provides the from-scratch machine-learning models the paper
// evaluates in Figure 4 (linear regression, logistic regression, linear
// SVM, a fully connected neural network, gradient boosting, and a
// multi-armed-bandit classifier) plus the regression trees and GBM used by
// the LRB and GL-Cache substrates. Everything is stdlib-only and
// deterministic given a seed.
package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a design matrix with binary labels (0 or 1).
type Dataset struct {
	X [][]float64
	Y []float64
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// Features returns the number of columns, or 0 for an empty set.
func (d *Dataset) Features() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks shape consistency.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(d.X), len(d.Y))
	}
	nf := d.Features()
	for i, row := range d.X {
		if len(row) != nf {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), nf)
		}
	}
	return nil
}

// Split partitions the dataset into train and test sets with the given
// train fraction, shuffling deterministically with seed.
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(d.X))
	n := int(trainFrac * float64(len(d.X)))
	train, test = &Dataset{}, &Dataset{}
	for i, j := range idx {
		if i < n {
			train.X = append(train.X, d.X[j])
			train.Y = append(train.Y, d.Y[j])
		} else {
			test.X = append(test.X, d.X[j])
			test.Y = append(test.Y, d.Y[j])
		}
	}
	return train, test
}

// Standardize scales features to zero mean and unit variance in place and
// returns the per-feature means and standard deviations so test data can
// be transformed consistently.
func (d *Dataset) Standardize() (mean, std []float64) {
	nf := d.Features()
	mean = make([]float64, nf)
	std = make([]float64, nf)
	n := float64(len(d.X))
	if n == 0 {
		return mean, std
	}
	for _, row := range d.X {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for _, row := range d.X {
		for j, v := range row {
			dv := v - mean[j]
			std[j] += dv * dv
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / n)
		if std[j] == 0 {
			std[j] = 1
		}
	}
	d.ApplyScaling(mean, std)
	return mean, std
}

// ApplyScaling transforms features in place with the given statistics.
func (d *Dataset) ApplyScaling(mean, std []float64) {
	for _, row := range d.X {
		for j := range row {
			row[j] = (row[j] - mean[j]) / std[j]
		}
	}
}

// Classifier is a trainable binary classifier. Predict returns a score in
// [0, 1]; >= 0.5 is interpreted as the positive class.
type Classifier interface {
	// Name identifies the model in Figure-4 tables.
	Name() string
	// Fit trains on the dataset.
	Fit(d *Dataset) error
	// Predict scores one feature vector.
	Predict(x []float64) float64
}

// Accuracy returns the fraction of correct binary decisions on d.
func Accuracy(c Classifier, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range d.X {
		pred := 0.0
		if c.Predict(x) >= 0.5 {
			pred = 1
		}
		if pred == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

func sigmoid(z float64) float64 {
	// Clamp to keep Exp in range; beyond ±30 the result saturates anyway.
	if z > 30 {
		return 1
	}
	if z < -30 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

func dot(w, x []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += w[i] * v
	}
	return s
}
