package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a design matrix with binary labels (0 or 1). Rows live in a
// flat row-major Matrix; Append copies the feature vector, so callers may
// reuse their scratch row.
type Dataset struct {
	X Matrix
	Y []float64
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return d.X.Rows() }

// Features returns the number of columns, or 0 for an empty set.
func (d *Dataset) Features() int { return d.X.Cols }

// Append adds one observation, copying x into the flat matrix.
func (d *Dataset) Append(x []float64, y float64) {
	d.X.AppendRow(x)
	d.Y = append(d.Y, y)
}

// Row returns feature row i, aliasing the matrix backing array.
func (d *Dataset) Row(i int) []float64 { return d.X.Row(i) }

// Validate checks shape consistency.
func (d *Dataset) Validate() error {
	if d.X.Cols > 0 && len(d.X.Data)%d.X.Cols != 0 {
		return fmt.Errorf("ml: %d matrix values do not tile stride %d", len(d.X.Data), d.X.Cols)
	}
	if d.X.Rows() != len(d.Y) {
		return fmt.Errorf("ml: %d rows but %d labels", d.X.Rows(), len(d.Y))
	}
	return nil
}

// Split partitions the dataset into train and test sets with the given
// train fraction, shuffling deterministically with seed. Rows are copied
// into the new datasets.
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(d.Len())
	n := int(trainFrac * float64(d.Len()))
	train, test = &Dataset{}, &Dataset{}
	for i, j := range idx {
		if i < n {
			train.Append(d.Row(j), d.Y[j])
		} else {
			test.Append(d.Row(j), d.Y[j])
		}
	}
	return train, test
}

// Standardize scales features to zero mean and unit variance in place and
// returns the per-feature means and standard deviations so test data can
// be transformed consistently.
func (d *Dataset) Standardize() (mean, std []float64) {
	nf := d.Features()
	mean = make([]float64, nf)
	std = make([]float64, nf)
	n := float64(d.Len())
	if n == 0 {
		return mean, std
	}
	for i := 0; i < d.Len(); i++ {
		for j, v := range d.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for i := 0; i < d.Len(); i++ {
		for j, v := range d.Row(i) {
			dv := v - mean[j]
			std[j] += dv * dv
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / n)
		if std[j] == 0 {
			std[j] = 1
		}
	}
	d.ApplyScaling(mean, std)
	return mean, std
}

// ApplyScaling transforms features in place with the given statistics.
func (d *Dataset) ApplyScaling(mean, std []float64) {
	for i := 0; i < d.Len(); i++ {
		row := d.Row(i)
		for j := range row {
			row[j] = (row[j] - mean[j]) / std[j]
		}
	}
}

// Classifier is a trainable binary classifier. Predict returns a score in
// [0, 1]; >= 0.5 is interpreted as the positive class.
type Classifier interface {
	// Name identifies the model in Figure-4 tables.
	Name() string
	// Fit trains on the dataset.
	Fit(d *Dataset) error
	// Predict scores one feature vector.
	Predict(x []float64) float64
}

// Accuracy returns the fraction of correct binary decisions on d.
func Accuracy(c Classifier, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < d.Len(); i++ {
		pred := 0.0
		if c.Predict(d.Row(i)) >= 0.5 {
			pred = 1
		}
		if pred == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

func sigmoid(z float64) float64 {
	// Clamp to keep Exp in range; beyond ±30 the result saturates anyway.
	if z > 30 {
		return 1
	}
	if z < -30 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

func dot(w, x []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += w[i] * v
	}
	return s
}
