package ml

import "errors"

// Bandit is the Multi-Armed-Bandit classifier of Figure 4. Each feature is
// discretised into a small number of quantile bins; the cross product of
// bins forms a context, and each context keeps running reward estimates
// for the two arms (predict 0 / predict 1). Training replays the dataset
// as a bandit stream: the model picks the arm with the higher estimate and
// receives reward 1 when the arm matches the label, updating the pulled
// arm's estimate — the same perceive-continuous-changes loop SCIP uses,
// applied to classification. Contexts never seen fall back to the global
// arm estimates.
type Bandit struct {
	// BinsPerFeature discretises each feature (default 4). The context
	// count is BinsPerFeature^features capped at 1<<16; excess features
	// are folded by hashing.
	BinsPerFeature int
	// Epsilon is the exploration rate during training (default 0.1).
	Epsilon float64
	// Epochs is the number of replay passes (default 3).
	Epochs int
	// Seed drives exploration.
	Seed int64

	cuts    [][]float64 // per-feature bin cut points
	rewards map[uint32][2]reward
	global  [2]reward
}

type reward struct {
	sum float64
	n   float64
}

func (r reward) value() float64 {
	if r.n == 0 {
		return 0.5 // optimistic prior keeps exploration alive
	}
	return r.sum / r.n
}

// Name implements Classifier.
func (m *Bandit) Name() string { return "MAB" }

// Fit implements Classifier.
func (m *Bandit) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Len() == 0 {
		return errors.New("ml: empty dataset")
	}
	if m.BinsPerFeature <= 0 {
		m.BinsPerFeature = 4
	}
	if m.Epsilon <= 0 {
		m.Epsilon = 0.1
	}
	if m.Epochs <= 0 {
		m.Epochs = 3
	}
	m.fitCuts(d)
	m.rewards = make(map[uint32][2]reward)
	m.global = [2]reward{}
	rng := newSplitMix(uint64(m.Seed) + 4)
	for e := 0; e < m.Epochs; e++ {
		for i := 0; i < d.Len(); i++ {
			ctx := m.context(d.Row(i))
			arm := m.chooseArm(ctx)
			if float64(rng.next()%1000)/1000 < m.Epsilon {
				arm = int(rng.next() % 2)
			}
			rw := 0.0
			if float64(arm) == d.Y[i] {
				rw = 1
			}
			rs := m.rewards[ctx]
			rs[arm].sum += rw
			rs[arm].n++
			m.rewards[ctx] = rs
			m.global[arm].sum += rw
			m.global[arm].n++
		}
	}
	return nil
}

func (m *Bandit) fitCuts(d *Dataset) {
	nf := d.Features()
	m.cuts = make([][]float64, nf)
	for f := 0; f < nf; f++ {
		lo, hi := d.X.Data[f], d.X.Data[f]
		for i := 0; i < d.Len(); i++ {
			v := d.X.Data[i*nf+f]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		cuts := make([]float64, m.BinsPerFeature-1)
		for c := range cuts {
			cuts[c] = lo + (hi-lo)*float64(c+1)/float64(m.BinsPerFeature)
		}
		m.cuts[f] = cuts
	}
}

func (m *Bandit) context(x []float64) uint32 {
	h := uint32(2166136261)
	for f, v := range x {
		b := uint32(0)
		for _, c := range m.cuts[f] {
			if v > c {
				b++
			}
		}
		h = (h ^ b) * 16777619
	}
	return h & 0xFFFF
}

func (m *Bandit) chooseArm(ctx uint32) int {
	rs, ok := m.rewards[ctx]
	if !ok || rs[0].n+rs[1].n == 0 {
		if m.global[1].value() > m.global[0].value() {
			return 1
		}
		return 0
	}
	if rs[1].value() > rs[0].value() {
		return 1
	}
	return 0
}

// Predict implements Classifier.
func (m *Bandit) Predict(x []float64) float64 {
	if m.rewards == nil {
		return 0.5
	}
	ctx := m.context(x)
	rs, ok := m.rewards[ctx]
	if !ok || rs[0].n+rs[1].n < 2 {
		rs = m.global
	}
	// Score: confidence that arm 1 (positive class) is right.
	p0, p1 := rs[0].value(), rs[1].value()
	if p0+p1 == 0 {
		return 0.5
	}
	// Arm k's value estimates P(label==k | pulled k); translate into a
	// positive-class score.
	return (p1 + (1 - p0)) / 2
}

// splitMix is a tiny deterministic PRNG so the bandit does not drag in
// math/rand state.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed + 0x9E3779B97F4A7C15} }

func (r *splitMix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
