package ml

// Matrix is a dense row-major design matrix: Rows()×Cols float64 values
// held in one flat slice. It replaces the pointer-chasing [][]float64
// layout on every training hot path: rows are contiguous (one cache
// stream per scan instead of a pointer dereference per row), appending a
// row never allocates a per-row slice header, and trimming or halving a
// training buffer is a single copy on the backing array.
//
// The zero Matrix is empty and ready to use; Cols is fixed by the first
// AppendRow when left zero.
type Matrix struct {
	// Data holds the values of row i at Data[i*Cols : (i+1)*Cols].
	Data []float64
	// Cols is the row stride (the feature count).
	Cols int
}

// MatrixFromRows copies rows into a fresh Matrix. Rows must be uniform
// width (enforced by the Dataset-construction call sites; ragged input
// panics on the copy bounds).
func MatrixFromRows(rows [][]float64) Matrix {
	var m Matrix
	for _, r := range rows {
		m.AppendRow(r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int {
	if m.Cols == 0 {
		return 0
	}
	return len(m.Data) / m.Cols
}

// Row returns row i as a slice aliasing the backing array. The result is
// full-slice-capped so an append by the caller cannot clobber row i+1.
func (m *Matrix) Row(i int) []float64 {
	lo, hi := i*m.Cols, (i+1)*m.Cols
	return m.Data[lo:hi:hi]
}

// AppendRow copies row onto the end of the matrix. The first append on a
// zero Matrix fixes Cols; later rows must match it.
func (m *Matrix) AppendRow(row []float64) {
	if m.Cols == 0 {
		m.Cols = len(row)
	}
	if len(row) != m.Cols {
		panic("ml: appending ragged row to Matrix")
	}
	m.Data = append(m.Data, row...)
}

// Reset empties the matrix in place (retaining the backing array) and
// sets the stride for the rows about to be appended.
func (m *Matrix) Reset(cols int) {
	m.Data = m.Data[:0]
	m.Cols = cols
}

// TrimFront keeps the last n rows, moving them to the front of the
// backing array with a single flat copy (the halving trim the training
// buffers use).
func (m *Matrix) TrimFront(n int) {
	rows := m.Rows()
	if n >= rows {
		return
	}
	copy(m.Data, m.Data[(rows-n)*m.Cols:])
	m.Data = m.Data[:n*m.Cols]
}

// growFloats returns s resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) //scip:alloc-ok grow-to-high-water-mark buffer: reallocates only while the shape grows
	}
	return s[:n]
}

// growInts is growFloats for int slices.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n) //scip:alloc-ok grow-to-high-water-mark buffer: reallocates only while the shape grows
	}
	return s[:n]
}

// growBytes is growFloats for byte slices.
func growBytes(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n) //scip:alloc-ok grow-to-high-water-mark buffer: reallocates only while the shape grows
	}
	return s[:n]
}
