package ml

import (
	"errors"
	"math"
	"math/rand"
)

// NN is a fully connected neural network with one ReLU hidden layer and a
// sigmoid output, trained by mini-batch SGD with momentum — the "NN with
// 1024 neurons" baseline of Figure 4 (the hidden width is configurable;
// the experiment harness uses a smaller width at reduced trace scales to
// keep runtimes proportionate).
type NN struct {
	// Hidden is the hidden-layer width (default 64).
	Hidden int
	// LR is the learning rate (default 0.05).
	LR float64
	// Epochs is the number of passes (default 30).
	Epochs int
	// Batch is the mini-batch size (default 32).
	Batch int
	// Momentum is the SGD momentum (default 0.9).
	Momentum float64
	// Seed fixes initialisation and shuffling.
	Seed int64

	w1 [][]float64 // [hidden][in+1]
	w2 []float64   // [hidden+1]
}

// Name implements Classifier.
func (m *NN) Name() string { return "NN" }

// Fit implements Classifier.
func (m *NN) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Len() == 0 {
		return errors.New("ml: empty dataset")
	}
	if m.Hidden <= 0 {
		m.Hidden = 64
	}
	if m.LR <= 0 {
		m.LR = 0.05
	}
	if m.Epochs <= 0 {
		m.Epochs = 30
	}
	if m.Batch <= 0 {
		m.Batch = 32
	}
	if m.Momentum <= 0 {
		m.Momentum = 0.9
	}
	nf := d.Features()
	rng := rand.New(rand.NewSource(m.Seed + 3))
	scale := math.Sqrt(2 / float64(nf+1))
	m.w1 = make([][]float64, m.Hidden)
	v1 := make([][]float64, m.Hidden)
	for h := range m.w1 {
		m.w1[h] = make([]float64, nf+1)
		v1[h] = make([]float64, nf+1)
		for j := range m.w1[h] {
			m.w1[h][j] = rng.NormFloat64() * scale
		}
	}
	m.w2 = make([]float64, m.Hidden+1)
	v2 := make([]float64, m.Hidden+1)
	for j := range m.w2 {
		m.w2[j] = rng.NormFloat64() * math.Sqrt(2/float64(m.Hidden+1))
	}

	hidden := make([]float64, m.Hidden)
	g2 := make([]float64, m.Hidden+1)
	g1 := make([][]float64, m.Hidden)
	for h := range g1 {
		g1[h] = make([]float64, nf+1)
	}
	for e := 0; e < m.Epochs; e++ {
		perm := rng.Perm(d.Len())
		for start := 0; start < len(perm); start += m.Batch {
			end := start + m.Batch
			if end > len(perm) {
				end = len(perm)
			}
			for j := range g2 {
				g2[j] = 0
			}
			for h := range g1 {
				for j := range g1[h] {
					g1[h][j] = 0
				}
			}
			for _, i := range perm[start:end] {
				x := d.Row(i)
				out := m.forward(x, hidden)
				delta := out - d.Y[i]
				for h := 0; h < m.Hidden; h++ {
					g2[h] += delta * hidden[h]
					if hidden[h] > 0 { // ReLU gradient
						dh := delta * m.w2[h]
						for j, v := range x {
							g1[h][j] += dh * v
						}
						g1[h][nf] += dh
					}
				}
				g2[m.Hidden] += delta
			}
			n := float64(end - start)
			for j := range m.w2 {
				v2[j] = m.Momentum*v2[j] - m.LR*g2[j]/n
				m.w2[j] += v2[j]
			}
			for h := range m.w1 {
				for j := range m.w1[h] {
					v1[h][j] = m.Momentum*v1[h][j] - m.LR*g1[h][j]/n
					m.w1[h][j] += v1[h][j]
				}
			}
		}
	}
	return nil
}

func (m *NN) forward(x []float64, hidden []float64) float64 {
	nf := len(x)
	z := m.w2[m.Hidden]
	for h := 0; h < m.Hidden; h++ {
		a := m.w1[h][nf] + dot(m.w1[h][:nf], x)
		if a < 0 {
			a = 0
		}
		hidden[h] = a
		z += m.w2[h] * a
	}
	return sigmoid(z)
}

// Predict implements Classifier.
func (m *NN) Predict(x []float64) float64 {
	if m.w1 == nil {
		return 0.5
	}
	hidden := make([]float64, m.Hidden)
	return m.forward(x, hidden)
}
