package ml

import (
	"errors"
	"math/rand"
)

// LinReg is ridge-regularised linear regression solved by the normal
// equations (the feature counts in this repository are small). For binary
// classification the regression output is thresholded at 0.5. The
// augmented system and solution are built in reusable flat buffers, so a
// refit (the GL-Cache training loop) allocates nothing in steady state.
type LinReg struct {
	// L2 is the ridge penalty (default 1e-3).
	L2 float64

	w []float64 // last element is the bias

	a   []float64 // flat augmented system, nf rows × (nf+1) stride
	row []float64 // one bias-extended input row
}

// Name implements Classifier.
func (m *LinReg) Name() string { return "LinReg" }

// Fit implements Classifier by solving (XᵀX + λI) w = XᵀY. On a singular
// system the previous weights (if any) are kept.
func (m *LinReg) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Len() == 0 {
		return errors.New("ml: empty dataset")
	}
	if m.L2 <= 0 {
		m.L2 = 1e-3
	}
	nf := d.Features() + 1 // plus bias
	stride := nf + 1
	// Build the normal equations.
	m.a = growFloats(m.a, nf*stride)
	a := m.a
	for i := range a {
		a[i] = 0
	}
	m.row = growFloats(m.row, nf)
	row := m.row
	for r := 0; r < d.Len(); r++ {
		copy(row, d.Row(r))
		row[nf-1] = 1
		yr := d.Y[r]
		for i := 0; i < nf; i++ {
			ai := a[i*stride : i*stride+stride]
			ri := row[i]
			for j := 0; j < nf; j++ {
				ai[j] += ri * row[j]
			}
			ai[nf] += ri * yr
		}
	}
	for i := 0; i < nf; i++ {
		a[i*stride+i] += m.L2
	}
	// solveGauss writes w only after elimination succeeds, so a singular
	// refit returns with the current model intact even though w reuses
	// m.w's backing array.
	w := growFloats(m.w, nf)
	if err := solveGauss(a, nf, w); err != nil {
		return err
	}
	m.w = w
	return nil
}

// Predict implements Classifier.
func (m *LinReg) Predict(x []float64) float64 {
	if m.w == nil {
		return 0.5
	}
	z := m.w[len(m.w)-1]
	for i, v := range x {
		z += m.w[i] * v
	}
	// Clamp the regression output into a score.
	if z < 0 {
		return 0
	}
	if z > 1 {
		return 1
	}
	return z
}

// solveGauss solves the flat augmented system a (n rows with stride n+1)
// by Gaussian elimination with partial pivoting, writing the solution
// into w (length n) only when elimination succeeds.
func solveGauss(a []float64, n int, w []float64) error {
	stride := n + 1
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if abs(a[r*stride+col]) > abs(a[p*stride+col]) {
				p = r
			}
		}
		if abs(a[p*stride+col]) < 1e-12 {
			return errors.New("ml: singular system")
		}
		if p != col {
			for c := 0; c <= n; c++ {
				a[col*stride+c], a[p*stride+c] = a[p*stride+c], a[col*stride+c]
			}
		}
		// Eliminate.
		piv := a[col*stride : col*stride+stride]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			ar := a[r*stride : r*stride+stride]
			f := ar[col] / piv[col]
			for c := col; c <= n; c++ {
				ar[c] -= f * piv[c]
			}
		}
	}
	for i := 0; i < n; i++ {
		w[i] = a[i*stride+n] / a[i*stride+i]
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// LogReg is L2-regularised logistic regression trained by mini-batch SGD.
type LogReg struct {
	// LR is the learning rate (default 0.1), Epochs the number of passes
	// (default 50), L2 the weight decay (default 1e-4), Seed the
	// shuffling seed.
	LR     float64
	Epochs int
	L2     float64
	Seed   int64

	w []float64 // last element is the bias
}

// Name implements Classifier.
func (m *LogReg) Name() string { return "LogReg" }

// Fit implements Classifier.
func (m *LogReg) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Len() == 0 {
		return errors.New("ml: empty dataset")
	}
	if m.LR <= 0 {
		m.LR = 0.1
	}
	if m.Epochs <= 0 {
		m.Epochs = 50
	}
	if m.L2 <= 0 {
		m.L2 = 1e-4
	}
	nf := d.Features()
	m.w = make([]float64, nf+1)
	rng := rand.New(rand.NewSource(m.Seed + 1))
	for e := 0; e < m.Epochs; e++ {
		lr := m.LR / (1 + 0.05*float64(e))
		for _, i := range rng.Perm(d.Len()) {
			x := d.Row(i)
			z := m.w[nf] + dot(m.w[:nf], x)
			g := sigmoid(z) - d.Y[i]
			for j, v := range x {
				m.w[j] -= lr * (g*v + m.L2*m.w[j])
			}
			m.w[nf] -= lr * g
		}
	}
	return nil
}

// Predict implements Classifier.
func (m *LogReg) Predict(x []float64) float64 {
	if m.w == nil {
		return 0.5
	}
	nf := len(m.w) - 1
	return sigmoid(m.w[nf] + dot(m.w[:nf], x))
}

// SVM is a linear support vector machine trained by Pegasos-style SGD on
// the hinge loss.
type SVM struct {
	// Lambda is the regularisation strength (default 1e-4), Epochs the
	// number of passes (default 50), Seed the shuffling seed.
	Lambda float64
	Epochs int
	Seed   int64

	w []float64 // last element is the bias
}

// Name implements Classifier.
func (m *SVM) Name() string { return "SVM" }

// Fit implements Classifier.
func (m *SVM) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Len() == 0 {
		return errors.New("ml: empty dataset")
	}
	if m.Lambda <= 0 {
		m.Lambda = 1e-4
	}
	if m.Epochs <= 0 {
		m.Epochs = 50
	}
	nf := d.Features()
	m.w = make([]float64, nf+1)
	rng := rand.New(rand.NewSource(m.Seed + 2))
	t := 1
	for e := 0; e < m.Epochs; e++ {
		for _, i := range rng.Perm(d.Len()) {
			lr := 1 / (m.Lambda * float64(t))
			t++
			x := d.Row(i)
			y := 2*d.Y[i] - 1 // {0,1} -> {-1,+1}
			z := m.w[nf] + dot(m.w[:nf], x)
			for j := range m.w[:nf] {
				m.w[j] *= 1 - lr*m.Lambda
			}
			if y*z < 1 {
				for j, v := range x {
					m.w[j] += lr * y * v
				}
				m.w[nf] += lr * y * 0.1 // unregularised, smaller step
			}
		}
	}
	return nil
}

// Predict implements Classifier; the margin is squashed into [0,1].
func (m *SVM) Predict(x []float64) float64 {
	if m.w == nil {
		return 0.5
	}
	nf := len(m.w) - 1
	return sigmoid(2 * (m.w[nf] + dot(m.w[:nf], x)))
}
