package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// linearlySeparable builds a dataset where y = 1 iff 2*x0 - x1 + 0.3 > 0,
// with light noise-free margins.
func linearlySeparable(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2, rng.Float64()}
		y := 0.0
		if 2*x[0]-x[1]+0.3 > 0 {
			y = 1
		}
		d.Append(x, y)
	}
	return d
}

// xorLike builds a dataset only nonlinear models can fit: y = 1 iff
// x0 and x1 have the same sign.
func xorLike(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		y := 0.0
		if (x[0] > 0) == (x[1] > 0) {
			y = 1
		}
		d.Append(x, y)
	}
	return d
}

func classifiers(seed int64) []Classifier {
	return []Classifier{
		&LinReg{},
		&LogReg{Seed: seed},
		&SVM{Seed: seed},
		&NN{Hidden: 32, Seed: seed},
		&GBM{Trees: 40},
		&Bandit{Seed: seed},
	}
}

func TestAllClassifiersOnSeparableData(t *testing.T) {
	d := linearlySeparable(2000, 1)
	train, test := d.Split(0.7, 2)
	for _, c := range classifiers(3) {
		if err := c.Fit(train); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		acc := Accuracy(c, test)
		if acc < 0.80 {
			t.Errorf("%s: accuracy %.3f < 0.80 on separable data", c.Name(), acc)
		}
	}
}

func TestNonlinearModelsOnXOR(t *testing.T) {
	d := xorLike(3000, 5)
	train, test := d.Split(0.7, 6)
	for _, c := range []Classifier{&NN{Hidden: 32, Seed: 7, Epochs: 60}, &GBM{Trees: 60}, &Bandit{Seed: 7}} {
		if err := c.Fit(train); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		acc := Accuracy(c, test)
		if acc < 0.85 {
			t.Errorf("%s: accuracy %.3f < 0.85 on XOR data", c.Name(), acc)
		}
	}
	// Sanity: a linear model cannot do much better than chance here.
	lin := &LogReg{Seed: 8}
	if err := lin.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(lin, test); acc > 0.65 {
		t.Errorf("LogReg accuracy %.3f on XOR — test data is not XOR-like", acc)
	}
}

func TestDatasetValidate(t *testing.T) {
	d := &Dataset{X: Matrix{Data: []float64{1, 2, 3}, Cols: 2}, Y: []float64{0, 1}}
	if err := d.Validate(); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	d2 := &Dataset{X: MatrixFromRows([][]float64{{1, 2}}), Y: []float64{0, 1}}
	if err := d2.Validate(); err == nil {
		t.Fatal("row/label mismatch accepted")
	}
}

func TestFitEmptyDatasetFails(t *testing.T) {
	for _, c := range classifiers(1) {
		if err := c.Fit(&Dataset{}); err == nil {
			t.Errorf("%s: Fit on empty dataset succeeded", c.Name())
		}
	}
}

func TestSplitPartitions(t *testing.T) {
	d := linearlySeparable(100, 1)
	train, test := d.Split(0.8, 3)
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d, want 80/20", train.Len(), test.Len())
	}
}

func TestStandardize(t *testing.T) {
	d := &Dataset{X: MatrixFromRows([][]float64{{1, 10}, {3, 20}, {5, 30}}), Y: []float64{0, 1, 0}}
	mean, std := d.Standardize()
	if math.Abs(mean[0]-3) > 1e-9 || math.Abs(mean[1]-20) > 1e-9 {
		t.Fatalf("means %v", mean)
	}
	for j := 0; j < 2; j++ {
		var m, v float64
		for i := 0; i < d.Len(); i++ {
			m += d.Row(i)[j]
		}
		m /= 3
		for i := 0; i < d.Len(); i++ {
			v += (d.Row(i)[j] - m) * (d.Row(i)[j] - m)
		}
		if math.Abs(m) > 1e-9 || math.Abs(v/3-1) > 1e-9 {
			t.Fatalf("feature %d not standardised: mean=%g var=%g", j, m, v/3)
		}
	}
	_ = std
}

func TestStandardizeConstantFeature(t *testing.T) {
	d := &Dataset{X: MatrixFromRows([][]float64{{7}, {7}}), Y: []float64{0, 1}}
	_, std := d.Standardize()
	if std[0] != 1 {
		t.Fatalf("constant feature std = %g, want fallback 1", std[0])
	}
	for _, v := range d.X.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("NaN/Inf after scaling constant feature")
		}
	}
}

func TestLinRegRecoverCoefficients(t *testing.T) {
	// y = 0.5*x0 - 0.25*x1 + 0.1, noiseless.
	rng := rand.New(rand.NewSource(9))
	d := &Dataset{}
	for i := 0; i < 500; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		d.Append(x, 0.5*x[0]-0.25*x[1]+0.1)
	}
	m := &LinReg{}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.w[0]-0.5) > 0.02 || math.Abs(m.w[1]+0.25) > 0.02 || math.Abs(m.w[2]-0.1) > 0.02 {
		t.Fatalf("recovered weights %v", m.w)
	}
}

func TestTreePredictsConstantRegions(t *testing.T) {
	X := MatrixFromRows([][]float64{{0}, {1}, {2}, {3}, {10}, {11}, {12}, {13}})
	y := []float64{1, 1, 1, 1, 5, 5, 5, 5}
	tr := &RegressionTree{MaxDepth: 2, MinLeaf: 1}
	tr.Fit(&X, y)
	if got := tr.Predict([]float64{1.5}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("left region predicts %g, want 1", got)
	}
	if got := tr.Predict([]float64{11.5}); math.Abs(got-5) > 1e-9 {
		t.Fatalf("right region predicts %g, want 5", got)
	}
	if tr.Depth() < 1 {
		t.Fatal("tree did not split")
	}
}

func TestTreeUnfittedPredictZero(t *testing.T) {
	tr := &RegressionTree{}
	if tr.Predict([]float64{1}) != 0 {
		t.Fatal("unfitted tree should predict 0")
	}
}

func TestGBMRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var X Matrix
	var y []float64
	for i := 0; i < 1500; i++ {
		x := []float64{rng.Float64() * 10}
		X.AppendRow(x)
		y = append(y, math.Sin(x[0]))
	}
	m := &GBM{Squared: true, Trees: 150, Depth: 3}
	if err := m.FitRegression(&X, y); err != nil {
		t.Fatal(err)
	}
	mse := 0.0
	for i := 0; i < X.Rows(); i++ {
		d := m.Predict(X.Row(i)) - y[i]
		mse += d * d
	}
	mse /= float64(X.Rows())
	if mse > 0.02 {
		t.Fatalf("GBM regression MSE %.4f > 0.02", mse)
	}
	if m.NumTrees() != 150 {
		t.Fatalf("NumTrees = %d", m.NumTrees())
	}
}

func TestGaussSingular(t *testing.T) {
	a := []float64{1, 1, 2, 1, 1, 2} // singular 2x2, stride 3
	w := make([]float64, 2)
	if err := solveGauss(a, 2, w); err == nil {
		t.Fatal("singular system solved")
	}
}

// Property: predictions of every model stay within [0,1] for arbitrary
// inputs after training.
func TestPredictRangeProperty(t *testing.T) {
	d := linearlySeparable(400, 21)
	models := classifiers(22)
	for _, c := range models {
		if err := c.Fit(d); err != nil {
			t.Fatal(err)
		}
	}
	f := func(a, b, cc float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(cc) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(cc, 0) {
			return true
		}
		x := []float64{math.Mod(a, 100), math.Mod(b, 100), math.Mod(cc, 100)}
		for _, c := range models {
			if c.Name() == "GBM" && (&GBM{}).Squared {
				continue
			}
			p := c.Predict(x)
			if math.IsNaN(p) || p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBanditDeterministic(t *testing.T) {
	d := linearlySeparable(500, 31)
	a := &Bandit{Seed: 5}
	b := &Bandit{Seed: 5}
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := d.Row(i)
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("bandit not deterministic for fixed seed")
		}
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if Accuracy(&LinReg{}, &Dataset{}) != 0 {
		t.Fatal("accuracy on empty set should be 0")
	}
}

func TestGBMRefitNoAllocs(t *testing.T) {
	// Steady-state retraining — the LRB loop refits the same GBM on a
	// same-shaped window every TrainEvery labels — must reuse the pooled
	// trees, fit scratch and score buffers instead of touching the heap.
	// The first fit sizes everything; every later fit must be free.
	rng := rand.New(rand.NewSource(17))
	var X Matrix
	y := make([]float64, 0, 2048)
	row := make([]float64, 14)
	for i := 0; i < 2048; i++ {
		for j := range row {
			row[j] = rng.Float64() * 16
		}
		X.AppendRow(row)
		y = append(y, rng.Float64()*34)
	}
	m := &GBM{Squared: true, Trees: 30, Depth: 4, LR: 0.2, MinLeaf: 16}
	if err := m.FitRegression(&X, y); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(5, func() {
		if err := m.FitRegression(&X, y); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("steady-state refit allocates %.1f allocs/op, want 0", a)
	}
}

func TestTreeRefitNoAllocs(t *testing.T) {
	// The DTA policy refits one standalone RegressionTree in place; like
	// the GBM, refitting on same-shaped data must be allocation-free.
	rng := rand.New(rand.NewSource(23))
	var X Matrix
	y := make([]float64, 0, 1024)
	row := make([]float64, 3)
	for i := 0; i < 1024; i++ {
		for j := range row {
			row[j] = rng.Float64() * 8
		}
		X.AppendRow(row)
		y = append(y, rng.Float64())
	}
	tr := &RegressionTree{MaxDepth: 4, MinLeaf: 32}
	tr.Fit(&X, y)
	if a := testing.AllocsPerRun(10, func() { tr.Fit(&X, y) }); a != 0 {
		t.Fatalf("steady-state tree refit allocates %.1f allocs/op, want 0", a)
	}
}
