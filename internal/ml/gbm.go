package ml

import (
	"errors"
	"math"
)

// GBM is a gradient boosting machine over regression trees. With the
// logistic loss it is the Figure-4 GBM classifier; with the squared loss
// it is the regression model LRB trains to predict next-access distances.
type GBM struct {
	// Trees is the ensemble size (default 50).
	Trees int
	// Depth is the per-tree depth (default 4).
	Depth int
	// LR is the shrinkage (default 0.1).
	LR float64
	// MinLeaf is the minimum samples per leaf (default 8).
	MinLeaf int
	// Squared selects squared loss (regression) instead of logistic.
	Squared bool

	base  float64
	trees []*RegressionTree
}

// Name implements Classifier.
func (m *GBM) Name() string { return "GBM" }

func (m *GBM) defaults() {
	if m.Trees <= 0 {
		m.Trees = 50
	}
	if m.Depth <= 0 {
		m.Depth = 4
	}
	if m.LR <= 0 {
		m.LR = 0.1
	}
	if m.MinLeaf <= 0 {
		m.MinLeaf = 8
	}
}

// Fit implements Classifier (logistic loss unless Squared is set).
func (m *GBM) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	return m.FitRegression(d.X, d.Y)
}

// FitRegression trains on raw targets. With the logistic loss targets must
// be 0/1; with Squared they may be arbitrary.
func (m *GBM) FitRegression(X [][]float64, y []float64) error {
	if len(X) == 0 {
		return errors.New("ml: empty dataset")
	}
	m.defaults()
	m.trees = m.trees[:0]
	n := len(y)
	// Base score.
	s := 0.0
	for _, v := range y {
		s += v
	}
	avg := s / float64(n)
	if m.Squared {
		m.base = avg
	} else {
		p := math.Min(math.Max(avg, 1e-6), 1-1e-6)
		m.base = math.Log(p / (1 - p))
	}
	f := make([]float64, n)
	for i := range f {
		f[i] = m.base
	}
	resid := make([]float64, n)
	for t := 0; t < m.Trees; t++ {
		for i := range resid {
			if m.Squared {
				resid[i] = y[i] - f[i]
			} else {
				resid[i] = y[i] - sigmoid(f[i])
			}
		}
		tree := &RegressionTree{MaxDepth: m.Depth, MinLeaf: m.MinLeaf}
		tree.Fit(X, resid)
		m.trees = append(m.trees, tree)
		for i := range f {
			f[i] += m.LR * tree.Predict(X[i])
		}
	}
	return nil
}

// PredictRaw returns the raw additive score (log-odds for logistic loss,
// the regression value for squared loss).
func (m *GBM) PredictRaw(x []float64) float64 {
	f := m.base
	for _, t := range m.trees {
		f += m.LR * t.Predict(x)
	}
	return f
}

// Predict implements Classifier: a probability for logistic loss, the raw
// value for squared loss.
func (m *GBM) Predict(x []float64) float64 {
	if m.Squared {
		return m.PredictRaw(x)
	}
	return sigmoid(m.PredictRaw(x))
}

// NumTrees reports the trained ensemble size.
func (m *GBM) NumTrees() int { return len(m.trees) }
