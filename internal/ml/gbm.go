package ml

import (
	"errors"
	"math"
)

// gbmBins is the histogram resolution of the GBM's weak learners (the
// RegressionTree default). It must fit a uint8 bin id for the root
// quantization fast path.
const gbmBins = 32

// GBM is a gradient boosting machine over regression trees. With the
// logistic loss it is the Figure-4 GBM classifier; with the squared loss
// it is the regression model LRB trains to predict next-access distances.
//
// All fit state — boosted scores, residuals, the shared tree-growing
// scratch and the weak learners themselves — lives on the GBM and is
// reused across fits, so retraining on same-shaped data (the LRB loop:
// one refit every TrainEvery labels) allocates nothing in steady state.
type GBM struct {
	// Trees is the ensemble size (default 50).
	Trees int
	// Depth is the per-tree depth (default 4).
	Depth int
	// LR is the shrinkage (default 0.1).
	LR float64
	// MinLeaf is the minimum samples per leaf (default 8).
	MinLeaf int
	// Squared selects squared loss (regression) instead of logistic.
	Squared bool

	base  float64
	trees []*RegressionTree

	pool    []*RegressionTree // recycled weak learners backing trees
	f       []float64         // boosted score per row
	resid   []float64         // pseudo-residuals per round
	scratch fitScratch        // shared tree-growing buffers
}

// Name implements Classifier.
func (m *GBM) Name() string { return "GBM" }

func (m *GBM) defaults() {
	if m.Trees <= 0 {
		m.Trees = 50
	}
	if m.Depth <= 0 {
		m.Depth = 4
	}
	if m.LR <= 0 {
		m.LR = 0.1
	}
	if m.MinLeaf <= 0 {
		m.MinLeaf = 8
	}
}

// Fit implements Classifier (logistic loss unless Squared is set).
func (m *GBM) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	return m.FitRegression(&d.X, d.Y)
}

// FitRegression trains on raw targets. With the logistic loss targets must
// be 0/1; with Squared they may be arbitrary. The refit is itself on the
// LRB hot path (label -> FitRegression every TrainEvery samples), hence
// hotpath: steady-state refits must reuse the pooled buffers.
//
//scip:hotpath
func (m *GBM) FitRegression(X *Matrix, y []float64) error {
	n := X.Rows()
	if n == 0 {
		return errors.New("ml: empty dataset") //scip:alloc-ok error path; the LRB refit loop's >=512-row guard never takes it
	}
	m.defaults()
	m.trees = m.trees[:0]
	// Base score.
	s := 0.0
	for _, v := range y {
		s += v
	}
	avg := s / float64(n)
	if m.Squared {
		m.base = avg
	} else {
		p := math.Min(math.Max(avg, 1e-6), 1-1e-6)
		m.base = math.Log(p / (1 - p))
	}
	m.f = growFloats(m.f, n)
	for i := range m.f {
		m.f[i] = m.base
	}
	m.resid = growFloats(m.resid, n)
	sc := &m.scratch
	sc.ensure(n, X.Cols, gbmBins)
	sc.prepareRoot(X, gbmBins)
	// Leaves fold lr·value into f as they are created, replacing the old
	// per-row re-traversal of each freshly fitted tree.
	sc.score, sc.lr = m.f, m.LR
	for t := 0; t < m.Trees; t++ {
		for i := range m.resid {
			if m.Squared {
				m.resid[i] = y[i] - m.f[i]
			} else {
				m.resid[i] = y[i] - sigmoid(m.f[i])
			}
		}
		tree := m.tree(t)
		// The previous tree's growth partitioned the shared permutation;
		// refill the values (the slice itself is built once per fit).
		sc.fillIdx(n)
		tree.fit(X, m.resid, sc, n)
		m.trees = append(m.trees, tree)
	}
	sc.score, sc.rootReady = nil, false
	return nil
}

// tree returns the i-th pooled weak learner, creating it on first use and
// re-stamping the hyperparameters on reuse.
func (m *GBM) tree(i int) *RegressionTree {
	if i == len(m.pool) {
		m.pool = append(m.pool, &RegressionTree{}) //scip:alloc-ok weak-learner pool warmup: refits reuse pooled trees
	}
	t := m.pool[i]
	t.MaxDepth, t.MinLeaf, t.Bins = m.Depth, m.MinLeaf, gbmBins
	return t
}

// PredictRaw returns the raw additive score (log-odds for logistic loss,
// the regression value for squared loss).
func (m *GBM) PredictRaw(x []float64) float64 {
	f := m.base
	for _, t := range m.trees {
		f += m.LR * t.Predict(x)
	}
	return f
}

// Predict implements Classifier: a probability for logistic loss, the raw
// value for squared loss.
func (m *GBM) Predict(x []float64) float64 {
	if m.Squared {
		return m.PredictRaw(x)
	}
	return sigmoid(m.PredictRaw(x))
}

// NumTrees reports the trained ensemble size.
func (m *GBM) NumTrees() int { return len(m.trees) }
