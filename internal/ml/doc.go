// Package ml provides the from-scratch machine-learning models the paper
// evaluates in Figure 4 (linear regression, logistic regression, linear
// SVM, a fully connected neural network, gradient boosting, and a
// multi-armed-bandit classifier) plus the regression trees and GBM used by
// the LRB and GL-Cache substrates. Everything is stdlib-only and
// deterministic given a seed.
package ml
