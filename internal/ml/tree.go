package ml

// RegressionTree is a CART regression tree with histogram-based splits,
// used standalone by the DTA baseline and as the weak learner inside GBM.
type RegressionTree struct {
	// MaxDepth limits tree depth (default 4).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 8).
	MinLeaf int
	// Bins is the number of histogram bins per feature (default 32).
	Bins int

	root *treeNode
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64
	leaf      bool
}

// FitWeighted grows the tree on rows X with targets y. idx selects the
// rows to use (nil means all).
func (t *RegressionTree) FitWeighted(X [][]float64, y []float64, idx []int) {
	if t.MaxDepth <= 0 {
		t.MaxDepth = 4
	}
	if t.MinLeaf <= 0 {
		t.MinLeaf = 8
	}
	if t.Bins <= 0 {
		t.Bins = 32
	}
	if idx == nil {
		idx = make([]int, len(X))
		for i := range idx {
			idx[i] = i
		}
	}
	t.root = t.grow(X, y, idx, 0)
}

// Fit grows the tree on the full dataset.
func (t *RegressionTree) Fit(X [][]float64, y []float64) { t.FitWeighted(X, y, nil) }

func mean(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func (t *RegressionTree) grow(X [][]float64, y []float64, idx []int, depth int) *treeNode {
	if depth >= t.MaxDepth || len(idx) < 2*t.MinLeaf {
		return &treeNode{leaf: true, value: mean(y, idx)}
	}
	feature, threshold, ok := t.bestSplit(X, y, idx)
	if !ok {
		return &treeNode{leaf: true, value: mean(y, idx)}
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.MinLeaf || len(right) < t.MinLeaf {
		return &treeNode{leaf: true, value: mean(y, idx)}
	}
	return &treeNode{
		feature:   feature,
		threshold: threshold,
		left:      t.grow(X, y, left, depth+1),
		right:     t.grow(X, y, right, depth+1),
	}
}

// bestSplit scans histogram bins of every feature for the split with the
// highest variance reduction.
func (t *RegressionTree) bestSplit(X [][]float64, y []float64, idx []int) (feature int, threshold float64, ok bool) {
	nf := len(X[idx[0]])
	bestGain := 1e-12
	totalSum, totalCnt := 0.0, float64(len(idx))
	for _, i := range idx {
		totalSum += y[i]
	}
	sums := make([]float64, t.Bins)
	cnts := make([]float64, t.Bins)
	for f := 0; f < nf; f++ {
		lo, hi := X[idx[0]][f], X[idx[0]][f]
		for _, i := range idx {
			v := X[i][f]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			continue
		}
		for b := range sums {
			sums[b], cnts[b] = 0, 0
		}
		scale := float64(t.Bins) / (hi - lo)
		for _, i := range idx {
			b := int((X[i][f] - lo) * scale)
			if b >= t.Bins {
				b = t.Bins - 1
			}
			sums[b] += y[i]
			cnts[b]++
		}
		leftSum, leftCnt := 0.0, 0.0
		for b := 0; b < t.Bins-1; b++ {
			leftSum += sums[b]
			leftCnt += cnts[b]
			rightCnt := totalCnt - leftCnt
			if leftCnt == 0 || rightCnt == 0 {
				continue
			}
			rightSum := totalSum - leftSum
			// Variance reduction ∝ Σ n_k·mean_k² − n·mean².
			gain := leftSum*leftSum/leftCnt + rightSum*rightSum/rightCnt - totalSum*totalSum/totalCnt
			if gain > bestGain {
				bestGain = gain
				feature = f
				threshold = lo + float64(b+1)/scale
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// Predict returns the leaf value for x (0 before Fit).
func (t *RegressionTree) Predict(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth reports the realised tree depth (diagnostics).
func (t *RegressionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
