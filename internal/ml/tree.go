package ml

// RegressionTree is a CART regression tree with histogram-based splits,
// used standalone by the DTA baseline and as the weak learner inside GBM.
//
// The tree is stored as a flat index-linked node array and fitted over a
// reusable fitScratch, so a refit on same-shaped data allocates nothing.
// The split arithmetic — per-node uniform bin edges, idx-order histogram
// accumulation, the variance-reduction gain formula and its tie-breaking
// scan order — is kept expression-for-expression identical to the
// original pointer-tree kernel so that fitted trees (and therefore every
// figure table) are bit-for-bit unchanged.
type RegressionTree struct {
	// MaxDepth limits tree depth (default 4).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 8).
	MinLeaf int
	// Bins is the number of histogram bins per feature (default 32).
	Bins int

	nodes   []treeNode
	scratch *fitScratch // lazily allocated for standalone Fit
}

// treeNode is one node of the flat tree; children are node-array indices.
type treeNode struct {
	threshold float64
	value     float64
	feature   int32
	left      int32
	right     int32
	leaf      bool
}

// fitScratch holds every buffer a tree fit needs so refits allocate
// nothing in steady state. A GBM shares one scratch across its whole
// ensemble; a standalone tree lazily allocates its own on first Fit.
type fitScratch struct {
	idx []int // row permutation, partitioned in place while growing
	tmp []int // right-child staging for the stable partition

	flo   []float64 // per-feature node minimum (len nf)
	fhi   []float64 // per-feature node maximum (len nf)
	scale []float64 // per-feature bin scale; 0 marks a constant feature
	sums  []float64 // nf×Bins histogram of target sums
	cnts  []float64 // nf×Bins histogram of row counts

	// Boosting hooks (nil/zero for standalone trees): score accumulates
	// lr·leafValue per row as leaves are created, which replaces the
	// per-row re-traversal of every fitted tree. Row i reaches exactly
	// the leaf whose partition segment contains it (the partition uses
	// the same comparison as Predict), so the scores are identical.
	score []float64
	lr    float64

	// Root fast path: every tree of a GBM fit grows its root over the
	// same full row set, so the root's per-feature ranges — and hence
	// its bin edges and every row's bin id — are fit-wide constants.
	// prepareRoot quantizes each row to compact bin ids once per fit;
	// per tree only the target sums change. Non-root nodes keep the
	// per-node binning of the original kernel (their ranges shrink with
	// the partition, so fit-wide edges would move the thresholds and
	// change figure bytes).
	rootReady bool
	rootLo    []float64
	rootScale []float64
	rootBins  []uint8   // row-major n×nf bin ids
	rootCnts  []float64 // nf×Bins row counts (constant across trees)
}

// ensure sizes every per-fit buffer, reallocating only on growth.
func (s *fitScratch) ensure(n, nf, bins int) {
	s.idx = growInts(s.idx, n)
	s.tmp = growInts(s.tmp, n)
	s.flo = growFloats(s.flo, nf)
	s.fhi = growFloats(s.fhi, nf)
	s.scale = growFloats(s.scale, nf)
	s.sums = growFloats(s.sums, nf*bins)
	s.cnts = growFloats(s.cnts, nf*bins)
}

// fillIdx resets the row permutation to identity. Growing a tree
// partitions idx in place, so each fit must refill the values — but the
// slice itself is built once and reused.
func (s *fitScratch) fillIdx(n int) {
	for i := range s.idx[:n] {
		s.idx[i] = i
	}
}

// prepareRoot computes the fit-wide root quantization: per-feature
// min/max over all rows, each row's bin id per feature, and the (tree-
// invariant) per-bin row counts. bins must fit a uint8 id.
func (s *fitScratch) prepareRoot(X *Matrix, bins int) {
	n, nf := X.Rows(), X.Cols
	s.rootLo = growFloats(s.rootLo, nf)
	s.rootScale = growFloats(s.rootScale, nf)
	s.rootBins = growBytes(s.rootBins, n*nf)
	s.rootCnts = growFloats(s.rootCnts, nf*bins)
	lo, hi := s.rootLo, s.fhi[:nf] // fhi doubles as max scratch here
	copy(lo, X.Data[:nf])
	copy(hi, X.Data[:nf])
	for i := 0; i < n; i++ {
		row := X.Data[i*nf : i*nf+nf]
		for f, v := range row {
			if v < lo[f] {
				lo[f] = v
			}
			if v > hi[f] {
				hi[f] = v
			}
		}
	}
	for f := 0; f < nf; f++ {
		if hi[f] <= lo[f] {
			s.rootScale[f] = 0 // constant feature: never split on it
		} else {
			s.rootScale[f] = float64(bins) / (hi[f] - lo[f])
		}
	}
	cnts := s.rootCnts[:nf*bins]
	for b := range cnts {
		cnts[b] = 0
	}
	for i := 0; i < n; i++ {
		row := X.Data[i*nf : i*nf+nf]
		ids := s.rootBins[i*nf : i*nf+nf]
		for f, v := range row {
			b := int((v - lo[f]) * s.rootScale[f])
			if b >= bins {
				b = bins - 1
			}
			ids[f] = uint8(b)
			cnts[f*bins+b]++
		}
	}
	s.rootReady = true
}

func (t *RegressionTree) defaults() {
	if t.MaxDepth <= 0 {
		t.MaxDepth = 4
	}
	if t.MinLeaf <= 0 {
		t.MinLeaf = 8
	}
	if t.Bins <= 0 {
		t.Bins = 32
	}
}

// Fit grows the tree on the full dataset, reusing the tree's own scratch
// buffers so repeated refits on same-shaped data allocate nothing.
func (t *RegressionTree) Fit(X *Matrix, y []float64) {
	t.defaults()
	if t.scratch == nil {
		t.scratch = &fitScratch{}
	}
	s := t.scratch
	n := X.Rows()
	s.ensure(n, X.Cols, t.Bins)
	s.fillIdx(n)
	s.score, s.lr, s.rootReady = nil, 0, false
	t.fit(X, y, s, n)
}

// fit grows the tree over the first n entries of s.idx. The caller has
// sized s (ensure) and filled the permutation (fillIdx).
func (t *RegressionTree) fit(X *Matrix, y []float64, s *fitScratch, n int) {
	// A depth-d tree holds at most 2^(d+1)-1 nodes; sizing the array to
	// that bound up front means no refit can ever grow it, keeping
	// steady-state retrains strictly allocation-free.
	if maxNodes := 1<<(t.MaxDepth+1) - 1; cap(t.nodes) < maxNodes {
		t.nodes = make([]treeNode, 0, maxNodes) //scip:alloc-ok one-time sizing to the depth bound; no refit can grow it
	}
	t.nodes = t.nodes[:0]
	t.grow(X, y, s, 0, n, 0)
}

// grow recursively builds the subtree over rows s.idx[lo:hi], returning
// its node index.
func (t *RegressionTree) grow(X *Matrix, y []float64, s *fitScratch, lo, hi, depth int) int32 {
	idx := s.idx[lo:hi]
	if depth >= t.MaxDepth || len(idx) < 2*t.MinLeaf {
		sum := 0.0
		for _, i := range idx {
			sum += y[i]
		}
		return t.leaf(s, idx, sum)
	}
	feature, threshold, total, ok := t.bestSplit(X, y, s, idx, depth)
	if !ok {
		return t.leaf(s, idx, total)
	}
	// Stable in-place partition of idx: rows at or below the threshold
	// compact to the front in order, the rest stage in tmp and copy back
	// behind them — the same left/right row order the old kernel got
	// from appending to fresh slices.
	cols := X.Cols
	nl, nt := lo, 0
	for _, i := range idx {
		if X.Data[i*cols+feature] <= threshold {
			s.idx[nl] = i
			nl++
		} else {
			s.tmp[nt] = i
			nt++
		}
	}
	copy(s.idx[nl:hi], s.tmp[:nt])
	if nl-lo < t.MinLeaf || hi-nl < t.MinLeaf {
		// total was accumulated in the pre-partition row order, so this
		// leaf's mean matches the old kernel's mean over the unsplit idx.
		return t.leaf(s, s.idx[lo:hi], total)
	}
	node := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: int32(feature), threshold: threshold})
	l := t.grow(X, y, s, lo, nl, depth+1)
	r := t.grow(X, y, s, nl, hi, depth+1)
	t.nodes[node].left, t.nodes[node].right = l, r
	return node
}

// leaf appends a leaf with value sum/len(idx) and, when boosting, folds
// lr·value into the score of every row the leaf covers.
func (t *RegressionTree) leaf(s *fitScratch, idx []int, sum float64) int32 {
	v := 0.0
	if len(idx) > 0 {
		v = sum / float64(len(idx))
	}
	if s.score != nil {
		for _, i := range idx {
			s.score[i] += s.lr * v
		}
	}
	node := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{leaf: true, value: v})
	return node
}

// bestSplit scans histogram bins of every feature for the split with the
// highest variance reduction. It also returns the idx-order target sum
// (reused for the leaf mean when no split is taken).
func (t *RegressionTree) bestSplit(X *Matrix, y []float64, s *fitScratch, idx []int, depth int) (feature int, threshold float64, totalSum float64, ok bool) {
	nf := X.Cols
	bins := t.Bins
	totalCnt := float64(len(idx))
	for _, i := range idx {
		totalSum += y[i]
	}

	var lo, scale, sums, cnts []float64
	if depth == 0 && s.rootReady {
		// Root fast path: ranges, bin ids and counts were quantized once
		// per fit; only the per-bin target sums depend on this tree.
		lo, scale, cnts = s.rootLo, s.rootScale, s.rootCnts
		sums = s.sums[:nf*bins]
		for b := range sums {
			sums[b] = 0
		}
		for _, i := range idx {
			ids := s.rootBins[i*nf : i*nf+nf]
			yi := y[i]
			for f, b := range ids {
				sums[f*bins+int(b)] += yi
			}
		}
	} else {
		// Pass 1: per-feature min/max for every feature in one row-major
		// sweep (the old kernel re-scanned the rows once per feature).
		lo, scale = s.flo[:nf], s.scale[:nf]
		hi := s.fhi[:nf]
		r0 := X.Row(idx[0])
		copy(lo, r0)
		copy(hi, r0)
		cols := X.Cols
		for _, i := range idx {
			row := X.Data[i*cols : i*cols+nf]
			for f, v := range row {
				if v < lo[f] {
					lo[f] = v
				}
				if v > hi[f] {
					hi[f] = v
				}
			}
		}
		for f := 0; f < nf; f++ {
			if hi[f] <= lo[f] {
				scale[f] = 0 // constant feature: all rows land in bin 0, skipped below
			} else {
				scale[f] = float64(bins) / (hi[f] - lo[f])
			}
		}
		// Pass 2: fill every feature's histogram in one sweep. Each
		// (feature, bin) bucket accumulates its rows in idx order —
		// exactly the order of the old per-feature passes.
		sums, cnts = s.sums[:nf*bins], s.cnts[:nf*bins]
		for b := range sums {
			sums[b], cnts[b] = 0, 0
		}
		for _, i := range idx {
			row := X.Data[i*cols : i*cols+nf]
			yi := y[i]
			for f, v := range row {
				b := int((v - lo[f]) * scale[f])
				if b >= bins {
					b = bins - 1
				}
				sums[f*bins+b] += yi
				cnts[f*bins+b]++
			}
		}
	}

	bestGain := 1e-12
	for f := 0; f < nf; f++ {
		sc := scale[f]
		if sc == 0 {
			continue
		}
		fs := sums[f*bins : f*bins+bins]
		fc := cnts[f*bins : f*bins+bins]
		leftSum, leftCnt := 0.0, 0.0
		for b := 0; b < bins-1; b++ {
			leftSum += fs[b]
			leftCnt += fc[b]
			rightCnt := totalCnt - leftCnt
			if leftCnt == 0 || rightCnt == 0 {
				continue
			}
			rightSum := totalSum - leftSum
			// Variance reduction ∝ Σ n_k·mean_k² − n·mean².
			gain := leftSum*leftSum/leftCnt + rightSum*rightSum/rightCnt - totalSum*totalSum/totalCnt
			if gain > bestGain {
				bestGain = gain
				feature = f
				threshold = lo[f] + float64(b+1)/sc
				ok = true
			}
		}
	}
	return feature, threshold, totalSum, ok
}

// Predict returns the leaf value for x (0 before Fit).
func (t *RegressionTree) Predict(x []float64) float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	n := &t.nodes[0]
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = &t.nodes[n.left]
		} else {
			n = &t.nodes[n.right]
		}
	}
	return n.value
}

// Depth reports the realised tree depth (diagnostics).
func (t *RegressionTree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	return t.depthOf(0)
}

func (t *RegressionTree) depthOf(n int32) int {
	nd := &t.nodes[n]
	if nd.leaf {
		return 0
	}
	l, r := t.depthOf(nd.left), t.depthOf(nd.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
