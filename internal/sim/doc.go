// Package sim replays traces against cache policies and collects the
// metrics the paper reports: object and byte miss ratios, interval series,
// and resource measurements (throughput, peak heap, CPU time proxy) used
// by Figures 9 and 11.
//
// Run replays one trace against one policy; the Load* helpers
// (BuildLoadReport, FormatLoadInterval, FormatShardOccupancy) format the
// concurrent harness's interval and final reports, shared by scip-load
// and scip-serve so their log lines align.
package sim
