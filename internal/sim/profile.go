package sim

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts a CPU profile at cpuPath and arranges for a heap
// profile at memPath when the returned stop function runs. Either path may
// be empty to disable that profile. The stop function is safe to defer; it
// finalises the CPU profile first, then forces a GC so the heap profile
// records reachable steady-state memory rather than unswept garbage.
//
// The profiles meter the process — they never feed a cache decision — so
// the CLIs (scip-bench, scip-load) share this helper to keep pprof
// plumbing out of every main.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
