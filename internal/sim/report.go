package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strings"
	"time"

	"github.com/scip-cache/scip/internal/stats"
)

// WriteJSON marshals v with indentation and writes it to path with a
// trailing newline — the shared artefact format of BENCH.json and
// LOAD.json, so report files stay diffable and machine-readable across
// tools.
func WriteJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// MergeJSON overlays v's top-level keys onto the JSON object already at
// path (if any) and writes the result back in the WriteJSON style. It
// lets independently produced report sections — the figure timings of
// scip-bench and the scale_matrix of scip-load — share one artefact file
// without clobbering each other: regenerating either section rewrites
// only its own keys. Existing numbers pass through as json.Number, so a
// merge never reformats values it does not own. v must marshal to a JSON
// object.
func MergeJSON(path string, v any) error {
	merged := map[string]any{}
	if buf, err := os.ReadFile(path); err == nil {
		dec := json.NewDecoder(bytes.NewReader(buf))
		dec.UseNumber()
		if err := dec.Decode(&merged); err != nil {
			return fmt.Errorf("merging into %s: %w", path, err)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("merging into %s: %w", path, err)
	}
	buf, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	var overlay map[string]any
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.UseNumber()
	if err := dec.Decode(&overlay); err != nil {
		return fmt.Errorf("merging %T into %s: %w", v, path, err)
	}
	for k, val := range overlay {
		merged[k] = val
	}
	return WriteJSON(path, merged)
}

// ScaleCell is one configuration of the scip-load scale matrix: a
// (workers, GOMAXPROCS, concurrency mode, batch size) tuple and what it
// measured. MreqPerSec is wall-clock; MissRatio must be identical across
// every cell of a matrix (the serial-order invariant) and the harness
// rejects the run otherwise.
type ScaleCell struct {
	Workers    int     `json:"workers"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Mode       string  `json:"mode"`
	Batch      int     `json:"batch"`
	MreqPerSec float64 `json:"mreq_per_sec"`
	MissRatio  float64 `json:"miss_ratio"`
}

// ScaleReport is the scale_matrix section of BENCH.json, produced by
// `scip-load -scalebench` (see `make bench-scale`).
type ScaleReport struct {
	GeneratedUnix int64       `json:"generated_unix"`
	Trace         string      `json:"trace"`
	Policy        string      `json:"policy"`
	CacheBytes    int64       `json:"cache_bytes"`
	Shards        int         `json:"shards"`
	Requests      int         `json:"requests"`
	NumCPU        int         `json:"num_cpu"`
	Cells         []ScaleCell `json:"cells"`
}

// GCCell is one working-set size of the scip-load GC-pressure matrix:
// the cache is filled to Objects resident entries, a forced GC measures
// how many scannable heap bytes the resident set added (ScanBytesPerObj
// — ~0 with the pointer-free core), and a churn replay then records the
// GC cycles and pause time the steady state incurs. MissRatio is the
// churn replay's miss ratio; it must be identical across the modes of a
// matrix (the serial-order invariant) and the harness rejects the run
// otherwise.
type GCCell struct {
	Objects         int     `json:"objects"`
	Mode            string  `json:"mode"`
	HeapScanMiB     float64 `json:"heap_scan_mib"`
	ScanBytesPerObj float64 `json:"scan_bytes_per_object"`
	GCCycles        uint32  `json:"gc_cycles"`
	PauseMillis     float64 `json:"pause_ms"`
	MissRatio       float64 `json:"miss_ratio"`
}

// GCReport is the gc_matrix section of BENCH.json, produced by
// `scip-load -gcbench` (see `make bench-gc`).
type GCReport struct {
	GeneratedUnix int64    `json:"generated_unix"`
	Trace         string   `json:"trace"`
	Policy        string   `json:"policy"`
	Shards        int      `json:"shards"`
	Requests      int      `json:"requests"`
	Cells         []GCCell `json:"cells"`
}

// ClusterCell is one node of the scip-route cluster-bench fleet: which
// share of the ring-partitioned trace the node owned and what its shard
// counters measured. MissRatio must be byte-identical to a single-node
// replay of the same partition (the cluster equivalence invariant) and
// the harness rejects the run otherwise.
type ClusterCell struct {
	Node      string  `json:"node"`
	Requests  int     `json:"requests"`
	Hits      int64   `json:"hits"`
	MissRatio float64 `json:"miss_ratio"`
}

// ClusterReport is the cluster_matrix section of BENCH.json, produced by
// `scip-route -clusterbench` (see `make bench-cluster`): an in-process
// fleet replay through the router, cross-checked node-by-node against
// single-node replays of the ring partitions, plus the router's added
// proxy cost.
type ClusterReport struct {
	GeneratedUnix  int64         `json:"generated_unix"`
	Trace          string        `json:"trace"`
	Policy         string        `json:"policy"`
	Nodes          int           `json:"nodes"`
	VNodes         int           `json:"vnodes"`
	Shards         int           `json:"shards"`
	Requests       int           `json:"requests"`
	RouteKreqSec   float64       `json:"route_kreq_per_sec"`
	RouteP50Micros float64       `json:"route_p50_us"`
	RouteP99Micros float64       `json:"route_p99_us"`
	Cells          []ClusterCell `json:"cells"`
}

// LoadReport is the final JSON document of a scip-load run. It shares the
// BENCH.json conventions (generated_unix, total_seconds, gomaxprocs) so
// runs can be compared and archived alongside figure timings.
type LoadReport struct {
	GeneratedUnix int64   `json:"generated_unix"`
	Trace         string  `json:"trace"`
	Policy        string  `json:"policy"`
	CacheBytes    int64   `json:"cache_bytes"`
	Shards        int     `json:"shards"`
	Workers       int     `json:"workers"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	Repeat        int     `json:"repeat"`
	Requests      int64   `json:"requests"`
	TotalSeconds  float64 `json:"total_seconds"`
	RPS           float64 `json:"requests_per_second"`
	MissRatio     float64 `json:"miss_ratio"`
	ByteMissRatio float64 `json:"byte_miss_ratio"`
	Evictions     int64   `json:"evictions"`
	UsedBytes     int64   `json:"used_bytes"`
	OccupancySkew float64 `json:"occupancy_skew"`
	RequestSkew   float64 `json:"request_skew"`
	P50Micros     float64 `json:"p50_us"`
	P99Micros     float64 `json:"p99_us"`

	PerShard []stats.ShardSnapshot `json:"per_shard"`
}

// BuildLoadReport condenses a final stats snapshot into a LoadReport.
// Identification fields (Trace, Policy, ...) are the caller's to fill.
func BuildLoadReport(snap stats.Snapshot, elapsed time.Duration) LoadReport {
	tot := snap.Totals()
	r := LoadReport{
		Requests:      tot.Requests,
		TotalSeconds:  elapsed.Seconds(),
		MissRatio:     snap.MissRatio(),
		ByteMissRatio: snap.ByteMissRatio(),
		Evictions:     tot.Evictions,
		UsedBytes:     tot.UsedBytes,
		OccupancySkew: snap.OccupancySkew(),
		RequestSkew:   snap.RequestSkew(),
		P50Micros:     float64(snap.LatencyQuantile(0.50).Nanoseconds()) / 1e3,
		P99Micros:     float64(snap.LatencyQuantile(0.99).Nanoseconds()) / 1e3,
		PerShard:      snap.Shards,
	}
	if s := elapsed.Seconds(); s > 0 {
		r.RPS = float64(tot.Requests) / s
	}
	return r
}

// FormatLoadInterval renders one live snapshot line of a load run:
// cumulative elapsed time, interval request rate, interval object and byte
// miss ratios, occupancy skew across shards, and interval p50/p99 access
// latency. delta must be the difference of two consecutive snapshots
// (Snapshot.Sub) taken ivDur apart.
func FormatLoadInterval(elapsed, ivDur time.Duration, delta stats.Snapshot) string {
	tot := delta.Totals()
	rps := 0.0
	if s := ivDur.Seconds(); s > 0 {
		rps = float64(tot.Requests) / s
	}
	return fmt.Sprintf(
		"t=%7.1fs req/s=%9.0f miss=%6.2f%% byteMiss=%6.2f%% occSkew=%5.2f p50=%-8s p99=%-8s",
		elapsed.Seconds(), rps,
		100*delta.MissRatio(), 100*delta.ByteMissRatio(),
		delta.OccupancySkew(),
		delta.LatencyQuantile(0.50).Round(time.Nanosecond),
		delta.LatencyQuantile(0.99).Round(time.Nanosecond))
}

// FormatShardOccupancy renders the per-shard occupancy gauges of a
// snapshot as a compact MiB list, e.g. "shard MiB: [3.2 3.1 3.3 3.0]".
func FormatShardOccupancy(snap stats.Snapshot) string {
	var b strings.Builder
	b.WriteString("shard MiB: [")
	for i, c := range snap.Shards {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.1f", float64(c.UsedBytes)/(1<<20))
	}
	b.WriteByte(']')
	return b.String()
}
