package sim

import (
	"fmt"
	"runtime"
	"time"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/trace"
)

// Options controls a replay.
type Options struct {
	// WarmupFrac is the fraction of requests excluded from the reported
	// miss ratios while the cache fills (metrics still observe them in
	// the interval series). Typical: 0.2.
	WarmupFrac float64
	// IntervalRequests sets the interval series granularity; 0 disables
	// the series.
	IntervalRequests int
	// Meter enables resource metering (wall time, peak heap). Metering
	// samples runtime.MemStats periodically, which perturbs throughput,
	// so it is off unless a resource figure asks for it.
	Meter bool
	// MeterEvery is the MemStats sampling period in requests (default
	// 65536 when metering).
	MeterEvery int
}

// IntervalPoint is one point of the interval miss-ratio series.
type IntervalPoint struct {
	// Requests is the cumulative request count at the end of the interval.
	Requests int
	// MissRatio is the object miss ratio within the interval.
	MissRatio float64
}

// Result summarises a replay.
type Result struct {
	Policy   string
	Trace    string
	Requests int

	// Measured over the post-warmup region.
	Hits        int
	Misses      int
	BytesHit    int64
	BytesMissed int64

	// Series over the whole trace (including warmup).
	Series []IntervalPoint

	// Resource metrics (only when Options.Meter).
	WallSeconds  float64
	TPS          float64 // requests per wall second
	PeakHeapMiB  float64 // max HeapAlloc observed, MiB
	NsPerRequest float64
}

// MissRatio returns the object miss ratio over the measured region.
func (r Result) MissRatio() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Misses) / float64(total)
}

// HitRatio returns 1 - MissRatio.
func (r Result) HitRatio() float64 { return 1 - r.MissRatio() }

// ByteMissRatio returns the byte miss ratio over the measured region.
func (r Result) ByteMissRatio() float64 {
	total := r.BytesHit + r.BytesMissed
	if total == 0 {
		return 0
	}
	return float64(r.BytesMissed) / float64(total)
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-14s %-7s miss=%6.2f%% byteMiss=%6.2f%%",
		r.Policy, r.Trace, 100*r.MissRatio(), 100*r.ByteMissRatio())
}

// Run replays tr against p and returns the collected metrics.
func Run(tr *trace.Trace, p cache.Policy, opts Options) Result {
	res := Result{Policy: p.Name(), Trace: tr.Name, Requests: len(tr.Requests)}
	warm := int(opts.WarmupFrac * float64(len(tr.Requests)))
	meterEvery := opts.MeterEvery
	if meterEvery <= 0 {
		meterEvery = 1 << 16
	}
	var (
		ivHits, ivTotal int
		peakHeap        uint64
		start           time.Time
	)
	if opts.Meter {
		runtime.GC()
		start = time.Now() //scip:wallclock-ok metering only: feeds Mreq/s and ns/req, never a cache decision
	}
	for i, req := range tr.Requests {
		hit := p.Access(req)
		if i >= warm {
			if hit {
				res.Hits++
				res.BytesHit += req.Size
			} else {
				res.Misses++
				res.BytesMissed += req.Size
			}
		}
		if opts.IntervalRequests > 0 {
			ivTotal++
			if hit {
				ivHits++
			}
			if ivTotal == opts.IntervalRequests {
				res.Series = append(res.Series, IntervalPoint{
					Requests:  i + 1,
					MissRatio: 1 - float64(ivHits)/float64(ivTotal),
				})
				ivHits, ivTotal = 0, 0
			}
		}
		if opts.Meter && (i+1)%meterEvery == 0 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peakHeap {
				peakHeap = ms.HeapAlloc
			}
		}
	}
	if opts.Meter {
		elapsed := time.Since(start) //scip:wallclock-ok metering only: feeds Mreq/s and ns/req, never a cache decision
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peakHeap {
			peakHeap = ms.HeapAlloc
		}
		res.WallSeconds = elapsed.Seconds()
		if res.WallSeconds > 0 {
			res.TPS = float64(len(tr.Requests)) / res.WallSeconds
		}
		if len(tr.Requests) > 0 {
			res.NsPerRequest = float64(elapsed.Nanoseconds()) / float64(len(tr.Requests))
		}
		res.PeakHeapMiB = float64(peakHeap) / (1 << 20)
	}
	if ivTotal > 0 && opts.IntervalRequests > 0 {
		res.Series = append(res.Series, IntervalPoint{
			Requests:  len(tr.Requests),
			MissRatio: 1 - float64(ivHits)/float64(ivTotal),
		})
	}
	return res
}
