package sim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMergeJSON: independently written sections must coexist in one
// artefact file — merging scale_matrix into a file with figure timings
// keeps the timings, and re-merging timings keeps the matrix. Numbers
// the merge does not own must survive byte-exact.
func TestMergeJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")

	type figures struct {
		GeneratedUnix int64   `json:"generated_unix"`
		Scale         float64 `json:"scale"`
	}
	if err := MergeJSON(path, figures{GeneratedUnix: 111, Scale: 0.01}); err != nil {
		t.Fatal(err)
	}
	matrix := struct {
		ScaleMatrix ScaleReport `json:"scale_matrix"`
	}{ScaleReport{
		Trace:  "CDN-T",
		Policy: "SCIP",
		Cells:  []ScaleCell{{Workers: 4, GoMaxProcs: 1, Mode: "actor", Batch: 64, MreqPerSec: 3.25, MissRatio: 0.41}},
	}}
	if err := MergeJSON(path, matrix); err != nil {
		t.Fatal(err)
	}

	var got map[string]any
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatalf("merged file is not valid JSON: %v", err)
	}
	if got["generated_unix"] != float64(111) || got["scale"] != 0.01 {
		t.Fatalf("first section lost: %v", got)
	}
	sm, ok := got["scale_matrix"].(map[string]any)
	if !ok || sm["policy"] != "SCIP" {
		t.Fatalf("scale_matrix missing or wrong: %v", got["scale_matrix"])
	}

	// A figure rerun overwrites only its own keys.
	if err := MergeJSON(path, figures{GeneratedUnix: 222, Scale: 0.02}); err != nil {
		t.Fatal(err)
	}
	buf, _ = os.ReadFile(path)
	s := string(buf)
	if !strings.Contains(s, `"generated_unix": 222`) {
		t.Fatalf("rerun did not update its keys:\n%s", s)
	}
	if !strings.Contains(s, `"scale_matrix"`) || !strings.Contains(s, `3.25`) {
		t.Fatalf("rerun clobbered scale_matrix:\n%s", s)
	}
	if !strings.HasSuffix(s, "\n") {
		t.Fatal("merged file lost the trailing newline")
	}
}

// TestMergeJSONRejectsNonObject: merging into a file that is not a JSON
// object must fail loudly rather than silently replace it.
func TestMergeJSONRejectsNonObject(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.json")
	if err := os.WriteFile(path, []byte("[1,2,3]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MergeJSON(path, map[string]int{"a": 1}); err == nil {
		t.Fatal("array file accepted")
	}
}
