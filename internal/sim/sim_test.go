package sim

import (
	"strings"
	"testing"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/trace"
)

func mkTrace(n int, keys int, size int64) *trace.Trace {
	t := &trace.Trace{Name: "s"}
	for i := 0; i < n; i++ {
		t.Requests = append(t.Requests, cache.Request{
			Time: int64(i), Key: uint64(i % keys), Size: size,
		})
	}
	return t
}

func TestRunCountsHitsAndMisses(t *testing.T) {
	// 3 distinct unit-size objects cycling through a cache that holds all
	// of them: 3 cold misses, everything else hits.
	tr := mkTrace(30, 3, 10)
	res := Run(tr, cache.NewLRU(100), Options{})
	if res.Misses != 3 {
		t.Fatalf("misses = %d, want 3", res.Misses)
	}
	if res.Hits != 27 {
		t.Fatalf("hits = %d, want 27", res.Hits)
	}
	if got := res.MissRatio(); got != 0.1 {
		t.Fatalf("miss ratio = %g, want 0.1", got)
	}
	if got := res.HitRatio(); got != 0.9 {
		t.Fatalf("hit ratio = %g", got)
	}
	if res.ByteMissRatio() != 0.1 {
		t.Fatalf("byte miss ratio = %g (uniform sizes)", res.ByteMissRatio())
	}
}

func TestRunWarmupExcluded(t *testing.T) {
	tr := mkTrace(30, 3, 10)
	res := Run(tr, cache.NewLRU(100), Options{WarmupFrac: 0.5})
	// Cold misses happen in the warm-up half: measured region is all hits.
	if res.Misses != 0 || res.Hits != 15 {
		t.Fatalf("hits=%d misses=%d, want 15/0", res.Hits, res.Misses)
	}
}

func TestRunIntervalSeries(t *testing.T) {
	tr := mkTrace(100, 5, 10)
	res := Run(tr, cache.NewLRU(1000), Options{IntervalRequests: 25})
	if len(res.Series) != 4 {
		t.Fatalf("series length %d, want 4", len(res.Series))
	}
	if res.Series[0].Requests != 25 || res.Series[3].Requests != 100 {
		t.Fatalf("series request counters wrong: %+v", res.Series)
	}
	// First interval holds the cold misses; later intervals are all hits.
	if res.Series[0].MissRatio <= res.Series[3].MissRatio {
		t.Fatal("first interval should have the highest miss ratio")
	}
	if res.Series[3].MissRatio != 0 {
		t.Fatalf("steady-state interval miss ratio = %g", res.Series[3].MissRatio)
	}
}

func TestRunPartialLastInterval(t *testing.T) {
	tr := mkTrace(55, 5, 10)
	res := Run(tr, cache.NewLRU(1000), Options{IntervalRequests: 25})
	if len(res.Series) != 3 {
		t.Fatalf("series length %d, want 3 (two full + remainder)", len(res.Series))
	}
	if res.Series[2].Requests != 55 {
		t.Fatalf("last point requests = %d", res.Series[2].Requests)
	}
}

func TestRunMetering(t *testing.T) {
	tr := mkTrace(50_000, 100, 10)
	res := Run(tr, cache.NewLRU(10_000), Options{Meter: true, MeterEvery: 1000})
	if res.TPS <= 0 {
		t.Fatalf("TPS = %g", res.TPS)
	}
	if res.PeakHeapMiB <= 0 {
		t.Fatalf("PeakHeapMiB = %g", res.PeakHeapMiB)
	}
	if res.NsPerRequest <= 0 {
		t.Fatalf("NsPerRequest = %g", res.NsPerRequest)
	}
	if res.WallSeconds <= 0 {
		t.Fatal("WallSeconds not recorded")
	}
}

func TestResultString(t *testing.T) {
	tr := mkTrace(10, 2, 10)
	res := Run(tr, cache.NewLRU(100), Options{})
	if !strings.Contains(res.String(), "LRU") {
		t.Fatalf("String() = %q", res.String())
	}
}

func TestEmptyTrace(t *testing.T) {
	res := Run(&trace.Trace{Name: "empty"}, cache.NewLRU(100), Options{Meter: true})
	if res.MissRatio() != 0 || res.ByteMissRatio() != 0 {
		t.Fatal("empty trace should produce zero ratios")
	}
}

func TestByteMissRatioWeighting(t *testing.T) {
	// One big object missing, many small hits: byte miss ratio must far
	// exceed the object miss ratio.
	tr := &trace.Trace{Name: "w"}
	for i := 0; i < 100; i++ {
		tr.Requests = append(tr.Requests, cache.Request{Time: int64(i), Key: 1, Size: 10})
	}
	tr.Requests = append(tr.Requests, cache.Request{Time: 101, Key: 2, Size: 1_000_000})
	res := Run(tr, cache.NewLRU(500), Options{})
	if res.ByteMissRatio() <= res.MissRatio() {
		t.Fatalf("byteMiss %.4f should exceed objMiss %.4f", res.ByteMissRatio(), res.MissRatio())
	}
}
