// concurrent-gateway drives a sharded SCIP cache from many goroutines —
// the shape of a real CDN edge process (TDC's prototype is a
// multi-ccd/multi-smcd process model) — and reports throughput scaling
// and the miss-ratio cost of sharding.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	scip "github.com/scip-cache/scip"
	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/shard"
)

func main() {
	tr, err := scip.GenerateProfile(scip.CDNT, 0.002, 17)
	if err != nil {
		log.Fatal(err)
	}
	capBytes := int64(64) << 30 / 500
	reqs := tr.Requests

	// Unsharded reference.
	ref := scip.Replay(tr, scip.NewCache(capBytes, scip.WithSeed(1)), scip.ReplayOptions{WarmupFrac: 0.2})
	fmt.Printf("unsharded SCIP miss ratio: %.2f%%\n\n", 100*ref.MissRatio())

	fmt.Printf("%-8s %8s %12s %10s\n", "workers", "shards", "Mreq/s", "missRatio")
	// Run several worker counts even on few cores: goroutine concurrency
	// exercises the locking either way; Mreq/s only scales with real CPUs.
	maxW := runtime.GOMAXPROCS(0) * 2
	if maxW > 8 {
		maxW = 8
	}
	if maxW < 4 {
		maxW = 4
	}
	for workers := 1; workers <= maxW; workers *= 2 {
		c, err := shard.New("scip", capBytes, workers*2, func(cb int64, i int) cache.Policy {
			return core.NewCache(cb, core.WithSeed(int64(i)+1), core.WithInterval(5000))
		})
		if err != nil {
			log.Fatal(err)
		}
		var hits atomic.Int64
		per := len(reqs) / workers
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, r := range reqs[w*per : (w+1)*per] {
					if c.Access(r) {
						hits.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		secs := time.Since(start).Seconds()
		total := per * workers
		fmt.Printf("%-8d %8d %12.2f %9.2f%%\n",
			workers, c.Shards(), float64(total)/secs/1e6, 100*(1-float64(hits.Load())/float64(total)))
	}
}
