// enhance-lrb reproduces the Figure-12 scenario as a program: take two
// state-of-the-art replacement algorithms (LRU-K and the learned LRB) and
// plug SCIP in as their insertion/promotion component, then compare the
// originals with their SCIP-enhanced versions.
package main

import (
	"fmt"
	"log"

	scip "github.com/scip-cache/scip"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/lrb"
	"github.com/scip-cache/scip/internal/replacement"
)

func main() {
	tr, err := scip.GenerateProfile(scip.CDNT, 0.002, 5)
	if err != nil {
		log.Fatal(err)
	}
	capBytes := int64(64) << 30 / 500 // 64 GB at trace scale 1/500
	opts := scip.ReplayOptions{WarmupFrac: 0.2}
	newSCIP := func(seed int64) *core.SCIP {
		return core.New(capBytes, core.WithSeed(seed), core.WithInterval(10_000), core.ForEnhancement())
	}

	rows := []struct {
		name string
		p    scip.Policy
	}{
		{"LRU-K", replacement.NewLRUK(capBytes, 1)},
		{"LRU-K-SCIP", replacement.NewLRUKWithInsertion(capBytes, 1, newSCIP(1))},
		{"LRB", lrb.New(capBytes, lrb.WithSeed(1))},
		{"LRB-SCIP", lrb.New(capBytes, lrb.WithSeed(1), lrb.WithInsertion(newSCIP(2)))},
	}
	fmt.Printf("workload %s, cache %d MiB\n", tr.Name, capBytes>>20)
	for _, r := range rows {
		res := scip.Replay(tr, r.p, opts)
		fmt.Printf("%-12s miss ratio %6.2f%%\n", r.name, 100*res.MissRatio())
	}
}
