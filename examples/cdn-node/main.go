// cdn-node simulates a TDC-style two-layer CDN node (outside cache in
// front of a data-center cache) serving a multi-day timeline, deploys
// SCIP halfway through — exactly like the paper's production rollout —
// and prints the before/after operating point.
package main

import (
	"fmt"
	"log"

	"github.com/scip-cache/scip/internal/exp"
	"github.com/scip-cache/scip/internal/tdc"
)

func main() {
	const (
		days      = 8
		deployDay = 4
		scale     = 0.005
	)
	tr, err := exp.TDCTrace(scale, 11, days)
	if err != nil {
		log.Fatal(err)
	}
	cfg := exp.TDCConfig(tr, deployDay*86_400, 11)
	res := tdc.Run(tr, cfg)

	fmt.Printf("two-layer CDN node: OC %d MiB, DC %d MiB, %d requests over %d days\n",
		cfg.OCCapacity>>20, cfg.DCCapacity>>20, len(tr.Requests), days)
	fmt.Printf("%-10s %12s %10s\n", "bucket(h)", "BTO-ratio", "lat(ms)")
	for i, b := range res.Buckets {
		marker := ""
		if i == res.Deployed {
			marker = "  <-- SCIP deployed"
		}
		fmt.Printf("%-10d %12.4f %10.1f%s\n", b.StartTime/3600, b.BTORatio(), b.MeanLatencyMs(), marker)
	}
	fmt.Println(res.Summary())
}
