// policy-compare races SCIP against the paper's insertion-policy
// baselines (Figure 8's cast) on one synthetic workload and prints a
// ranked table.
package main

import (
	"fmt"
	"log"
	"sort"

	scip "github.com/scip-cache/scip"
	"github.com/scip-cache/scip/internal/policies"
)

func main() {
	tr, err := scip.GenerateProfile(scip.CDNA, 0.002, 7)
	if err != nil {
		log.Fatal(err)
	}
	capBytes := int64(64) << 30 / 500 // 64 GB at trace scale 1/500
	seed := int64(1)

	contenders := []struct {
		name  string
		build func() scip.Policy
	}{
		{"SCIP", func() scip.Policy { return scip.NewCache(capBytes, scip.WithSeed(seed)) }},
		{"LRU", func() scip.Policy { return scip.NewLRU(capBytes) }},
		{"LIP", func() scip.Policy { return policies.NewCache("LIP", capBytes, policies.LIP{}) }},
		{"BIP", func() scip.Policy { return policies.NewCache("BIP", capBytes, policies.NewBIP(seed)) }},
		{"DIP", func() scip.Policy { return policies.NewCache("DIP", capBytes, policies.NewDIP(capBytes, seed)) }},
		{"PIPP", func() scip.Policy { return policies.NewPIPP(capBytes, seed) }},
		{"SHiP", func() scip.Policy { return policies.NewCache("SHiP", capBytes, policies.NewSHiP()) }},
		{"DTA", func() scip.Policy { return policies.NewCache("DTA", capBytes, policies.NewDTA()) }},
		{"DGIPPR", func() scip.Policy { return policies.NewDGIPPR(capBytes, seed) }},
		{"DAAIP", func() scip.Policy { return policies.NewCache("DAAIP", capBytes, policies.NewDAAIP(seed)) }},
		{"ASC-IP", func() scip.Policy { return policies.NewCache("ASC-IP", capBytes, policies.NewASCIP(capBytes)) }},
	}

	type row struct {
		name string
		res  scip.ReplayResult
	}
	var rows []row
	for _, c := range contenders {
		rows = append(rows, row{c.name, scip.Replay(tr, c.build(), scip.ReplayOptions{WarmupFrac: 0.2})})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].res.MissRatio() < rows[j].res.MissRatio() })

	fmt.Printf("workload %s, cache %d MiB\n", tr.Name, capBytes>>20)
	fmt.Printf("%-8s %10s %10s\n", "policy", "missRatio", "byteMiss")
	for _, r := range rows {
		fmt.Printf("%-8s %9.2f%% %9.2f%%\n", r.name, 100*r.res.MissRatio(), 100*r.res.ByteMissRatio())
	}
	fmt.Printf("%-8s %9.2f%%  (offline optimal)\n", "Belady", 100*scip.BeladyMissRatio(tr, capBytes))
}
