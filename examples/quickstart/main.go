// Quickstart: generate a small synthetic CDN-T workload, run SCIP-LRU and
// plain LRU side by side, and print their miss ratios.
package main

import (
	"fmt"
	"log"

	scip "github.com/scip-cache/scip"
)

func main() {
	// A CDN-T-flavoured trace at 1/500 of the paper's size (~160k
	// requests, ~4 GiB working set).
	tr, err := scip.GenerateProfile(scip.CDNT, 0.002, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr.ComputeStats().String())

	// 64 GB in the paper maps to 64GB × scale at this trace scale.
	capBytes := int64(64) << 30 / 500 // 64 GB at trace scale 1/500
	opts := scip.ReplayOptions{WarmupFrac: 0.2}

	lru := scip.Replay(tr, scip.NewLRU(capBytes), opts)
	sc := scip.Replay(tr, scip.NewCache(capBytes, scip.WithSeed(1)), opts)

	fmt.Printf("LRU   miss ratio: %6.2f%% (byte: %6.2f%%)\n", 100*lru.MissRatio(), 100*lru.ByteMissRatio())
	fmt.Printf("SCIP  miss ratio: %6.2f%% (byte: %6.2f%%)\n", 100*sc.MissRatio(), 100*sc.ByteMissRatio())
	fmt.Printf("Belady lower bound: %6.2f%%\n", 100*scip.BeladyMissRatio(tr, capBytes))
}
