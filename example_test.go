package scip_test

import (
	"fmt"

	"github.com/scip-cache/scip"
)

// ExampleNewCache exercises the library's smallest useful loop: build
// the paper's SCIP-LRU, feed it accesses, observe hits and misses.
func ExampleNewCache() {
	c := scip.NewCache(1 << 20) // 1 MiB budget
	requests := []scip.Request{
		{Time: 1, Key: 1, Size: 4096},
		{Time: 2, Key: 2, Size: 4096},
		{Time: 3, Key: 1, Size: 4096}, // warm: a hit
	}
	for _, r := range requests {
		fmt.Printf("key %d: hit=%v\n", r.Key, c.Access(r))
	}
	fmt.Printf("resident bytes: %d\n", c.Used())
	// Output:
	// key 1: hit=false
	// key 2: hit=false
	// key 1: hit=true
	// resident bytes: 8192
}

// ExampleReplay generates a scaled-down synthetic workload from one of
// the paper's profiles and replays it, comparing SCIP-LRU against plain
// LRU. Generation and both policies are seeded, so the miss ratios are
// reproducible — which is why the ordering assertion below can be part
// of the example's verified output.
func ExampleReplay() {
	tr, err := scip.GenerateProfile(scip.CDNT, 0.0001, 1)
	if err != nil {
		panic(err)
	}
	capBytes := scip.CDNT.CacheBytes(64<<30, 0.0001)

	lru := scip.Replay(tr, scip.NewLRU(capBytes), scip.ReplayOptions{})
	sc := scip.Replay(tr, scip.NewCache(capBytes, scip.WithSeed(1)), scip.ReplayOptions{})
	fmt.Printf("requests: %d\n", len(tr.Requests))
	fmt.Printf("SCIP beats LRU: %v\n", sc.MissRatio() < lru.MissRatio())
	// Output:
	// requests: 7875
	// SCIP beats LRU: true
}

// ExampleNewQueueCache composes a custom insertion policy with the
// generic LRU victim-selection queue — the extension point every
// baseline in internal/policies uses.
func ExampleNewQueueCache() {
	// Always insert at LRU: the "no second chance" straw man.
	lip := scip.New(1 << 20) // SCIP is itself an InsertionPolicy
	c := scip.NewQueueCache("SCIP-LRU-custom", 1<<20, lip)
	fmt.Println(c.Name())
	// Output:
	// SCIP-LRU-custom
}
