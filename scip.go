package scip

import (
	"github.com/scip-cache/scip/internal/belady"
	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/sim"
	"github.com/scip-cache/scip/internal/trace"
)

// Core request/policy model.
type (
	// Request is a single object access (time, key, size in bytes).
	Request = cache.Request
	// Policy is a full cache replacement algorithm.
	Policy = cache.Policy
	// InsertionPolicy decides queue positions for missing and hit
	// objects; SCIP implements it.
	InsertionPolicy = cache.InsertionPolicy
	// Position is a queue insertion position (MRU or LRU).
	Position = cache.Position
	// SCIP is the learned insertion/promotion policy itself.
	SCIP = core.SCIP
	// Option configures a SCIP instance.
	Option = core.Option
	// Trace is an in-memory access trace.
	Trace = trace.Trace
	// TraceStats summarises a trace (the paper's Table 1 columns).
	TraceStats = trace.Stats
	// Profile identifies one of the paper's synthetic workload profiles.
	Profile = gen.Profile
	// WorkloadConfig parametrises the synthetic generator.
	WorkloadConfig = gen.Config
	// ReplayOptions controls Replay.
	ReplayOptions = sim.Options
	// ReplayResult reports a replay's metrics.
	ReplayResult = sim.Result
)

// Queue positions.
const (
	MRU = cache.MRU
	LRU = cache.LRU
)

// Workload profiles matching the paper's Table 1.
const (
	CDNT = gen.CDNT
	CDNW = gen.CDNW
	CDNA = gen.CDNA
)

// SCIP options (see the core package for semantics).
var (
	WithSeed            = core.WithSeed
	WithInterval        = core.WithInterval
	WithHistoryFraction = core.WithHistoryFraction
	WithUnifiedModel    = core.WithUnifiedModel
	WithDueling         = core.WithDueling
)

// New returns the SCIP insertion/promotion policy for a cache of capBytes
// capacity; plug it into any queue cache via NewQueueCache, or use
// NewCache for the ready-made SCIP-LRU.
func New(capBytes int64, opts ...Option) *SCIP { return core.New(capBytes, opts...) }

// NewSCI returns the SCI ablation (learned insertion, always-MRU
// promotion).
func NewSCI(capBytes int64, opts ...Option) *SCIP { return core.NewSCI(capBytes, opts...) }

// NewCache returns the paper's SCIP-LRU: an LRU victim-selection cache
// driven by SCIP insertion and promotion.
func NewCache(capBytes int64, opts ...Option) Policy { return core.NewCache(capBytes, opts...) }

// NewLRU returns a plain LRU cache (the paper's baseline).
func NewLRU(capBytes int64) Policy { return cache.NewLRU(capBytes) }

// NewQueueCache pairs any insertion policy with an LRU victim-selection
// cache.
func NewQueueCache(name string, capBytes int64, ins InsertionPolicy) Policy {
	return cache.NewQueueCache(name, capBytes, ins)
}

// GenerateProfile produces a synthetic workload for one of the paper's
// profiles at the given scale (1 = the paper's full trace sizes).
func GenerateProfile(p Profile, scale float64, seed int64) (*Trace, error) {
	return gen.Generate(p.Config(scale, seed))
}

// Generate produces a synthetic workload from an explicit configuration.
func Generate(cfg WorkloadConfig) (*Trace, error) { return gen.Generate(cfg) }

// Replay runs a trace through a policy and reports miss ratios and
// optional resource metrics.
func Replay(tr *Trace, p Policy, opts ReplayOptions) ReplayResult { return sim.Run(tr, p, opts) }

// BeladyMissRatio computes the offline-optimal miss ratio for a trace —
// the unreachable lower bound the paper plots in Figures 8 and 10.
func BeladyMissRatio(tr *Trace, capBytes int64) float64 {
	return belady.MissRatio(tr, capBytes)
}
