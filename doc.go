// Package scip is a Go implementation of SCIP — the Smart Cache Insertion
// and Promotion policy for content delivery networks (Wang et al., ICPP
// 2023) — together with the complete experimental apparatus of the paper:
// a CDN cache simulator, synthetic workload generators calibrated to the
// paper's three traces, offline ZRO/P-ZRO analytics, Belady's optimal
// oracle, the eight insertion-policy baselines and nine replacement
// algorithms SCIP is evaluated against (including lightweight LRB and
// GL-Cache substrates built from scratch), and a model of the TDC
// two-layer CDN hierarchy the paper deployed on.
//
// # Quick start
//
//	tr, _ := scip.GenerateProfile(scip.CDNT, 0.002, 1)   // synthetic CDN-T trace
//	c := scip.NewCache(512<<20)                           // SCIP-LRU, 512 MiB
//	res := scip.Replay(tr, c, scip.ReplayOptions{WarmupFrac: 0.2})
//	fmt.Printf("miss ratio: %.4f\n", res.MissRatio())
//
// The facade re-exports the pieces most users need; the full apparatus
// lives in the internal packages and is exercised end-to-end by the
// cmd/scip-bench experiment harness, which regenerates every table and
// figure of the paper.
package scip
