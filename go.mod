module github.com/scip-cache/scip

go 1.22
