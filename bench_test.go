// Package-level benchmarks: one per table/figure of the paper (each
// re-runs the corresponding experiment at a reduced scale and reports
// ns/op for the whole regeneration), plus ablation and micro benchmarks
// for the design choices DESIGN.md calls out. The full-scale regenerations
// live in cmd/scip-bench.
package scip_test

import (
	"io"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	scip "github.com/scip-cache/scip"
	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/exp"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/lrb"
	"github.com/scip-cache/scip/internal/ml"
	"github.com/scip-cache/scip/internal/shard"
	"github.com/scip-cache/scip/internal/sim"
	"github.com/scip-cache/scip/internal/stats"
)

// benchCfg is the reduced-scale configuration the figure benchmarks run.
func benchCfg() exp.Config {
	return exp.Config{Scale: 0.001, Seeds: []int64{1}, Out: io.Discard, Quick: true}
}

// runFigure benches a whole experiment regeneration.
func runFigure(b *testing.B, name string) {
	b.Helper()
	r, ok := exp.Lookup(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Stats(b *testing.B)               { runFigure(b, "table1") }
func BenchmarkFig1ZROAnalysis(b *testing.B)           { runFigure(b, "fig1") }
func BenchmarkFig3Oracle(b *testing.B)                { runFigure(b, "fig3") }
func BenchmarkFig4ModelAccuracy(b *testing.B)         { runFigure(b, "fig4") }
func BenchmarkFig6TDC(b *testing.B)                   { runFigure(b, "fig6") }
func BenchmarkFig7SCIPvsSCI(b *testing.B)             { runFigure(b, "fig7") }
func BenchmarkFig8InsertionPolicies(b *testing.B)     { runFigure(b, "fig8") }
func BenchmarkFig9InsertionResources(b *testing.B)    { runFigure(b, "fig9") }
func BenchmarkFig10Replacement(b *testing.B)          { runFigure(b, "fig10") }
func BenchmarkFig11ReplacementResources(b *testing.B) { runFigure(b, "fig11") }
func BenchmarkFig12Enhance(b *testing.B)              { runFigure(b, "fig12") }

// --- Ablation benchmarks (DESIGN.md §6): SCIP variants on one workload.

func ablationTrace(b *testing.B) (*scip.Trace, int64) {
	b.Helper()
	tr, err := scip.GenerateProfile(scip.CDNT, 0.001, 1)
	if err != nil {
		b.Fatal(err)
	}
	return tr, gen.CDNT.CacheBytes(64<<30, 0.001)
}

func benchVariant(b *testing.B, opts ...core.Option) {
	b.Helper()
	tr, capBytes := ablationTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := append([]core.Option{core.WithSeed(1), core.WithInterval(2000)}, opts...)
		res := sim.Run(tr, core.NewCache(capBytes, base...), sim.Options{WarmupFrac: 0.2})
		b.ReportMetric(res.MissRatio(), "missRatio")
	}
}

func BenchmarkAblationDefault(b *testing.B)      { benchVariant(b) }
func BenchmarkAblationHistorySize(b *testing.B)  { benchVariant(b, core.WithHistoryFraction(0.25)) }
func BenchmarkAblationHistoryFull(b *testing.B)  { benchVariant(b, core.WithHistoryFraction(1.0)) }
func BenchmarkAblationInterval(b *testing.B)     { benchVariant(b, core.WithInterval(500)) }
func BenchmarkAblationUnifiedModel(b *testing.B) { benchVariant(b, core.WithUnifiedModel()) }
func BenchmarkAblationNoDueling(b *testing.B)    { benchVariant(b, core.WithDueling(0)) }
func BenchmarkAblationNoEvictSignal(b *testing.B) {
	benchVariant(b, core.WithEvictGain(0))
}
func BenchmarkAblationNoHitSignal(b *testing.B) { benchVariant(b, core.WithHitGain(0)) }
func BenchmarkAblationForceNone(b *testing.B)   { benchVariant(b, core.WithForceMode(core.ForceNone)) }

// --- Micro benchmarks: per-access cost of the core data paths.

func benchAccess(b *testing.B, p cache.Policy) {
	b.Helper()
	tr, err := scip.GenerateProfile(scip.CDNT, 0.001, 2)
	if err != nil {
		b.Fatal(err)
	}
	reqs := tr.Requests
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Access(reqs[i%len(reqs)])
	}
}

func BenchmarkAccessLRU(b *testing.B) {
	benchAccess(b, cache.NewLRU(64<<30/1000))
}

func BenchmarkAccessSCIP(b *testing.B) {
	benchAccess(b, core.NewCache(64<<30/1000, core.WithSeed(1)))
}

func BenchmarkQueuePushEvict(b *testing.B) {
	var a cache.Arena
	a.Reserve(1024)
	q := a.NewQueue()
	handles := make([]cache.Handle, 1024)
	for i := range handles {
		h := a.Alloc()
		e := a.At(h)
		e.Key = uint64(i)
		e.Size = 1
		handles[i] = h
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := handles[i%1024]
		if a.At(h).InQueue() {
			q.Remove(h)
		}
		q.PushFront(h)
		if q.Len() > 512 {
			q.Remove(q.Back())
		}
	}
}

func BenchmarkHistoryAddDelete(b *testing.B) {
	h := cache.NewHistory(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(uint64(i%4096), 256, cache.ResInserted)
		if i%3 == 0 {
			h.Delete(uint64((i - 1) % 4096))
		}
	}
}

// --- Replay hot-path benchmarks: per-request cost and allocations of the
// zero-allocation steady-state loop (eviction-fed Entry freelist, hoisted
// ResidencyObserver, pre-sized index). Run with -benchmem or rely on
// ReportAllocs: steady-state LRU replay should report 0 allocs/op.

// benchReplaySteadyState replays a trace through an already-warm policy so
// every miss is served from the eviction-fed freelist.
func benchReplaySteadyState(b *testing.B, build func(capBytes int64) cache.Policy) {
	tr, err := scip.GenerateProfile(scip.CDNT, 0.001, 3)
	if err != nil {
		b.Fatal(err)
	}
	capBytes := gen.CDNT.CacheBytes(64<<30, 0.001)
	p := build(capBytes)
	reqs := tr.Requests
	for _, r := range reqs { // warm: fill the cache and seed the freelist
		p.Access(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Access(reqs[i%len(reqs)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mreq/s")
}

func BenchmarkReplayHotPathLRU(b *testing.B) {
	benchReplaySteadyState(b, func(c int64) cache.Policy { return cache.NewLRU(c) })
}

func BenchmarkReplayHotPathSCIP(b *testing.B) {
	benchReplaySteadyState(b, func(c int64) cache.Policy {
		return core.NewCache(c, core.WithSeed(1), core.WithInterval(2000))
	})
}

// BenchmarkReplayWholeTrace measures full-trace replay throughput through
// sim.Run — the unit of work the parallel experiment engine schedules.
func BenchmarkReplayWholeTrace(b *testing.B) {
	tr, err := scip.GenerateProfile(scip.CDNT, 0.001, 3)
	if err != nil {
		b.Fatal(err)
	}
	capBytes := gen.CDNT.CacheBytes(64<<30, 0.001)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cache.NewLRU(capBytes)
		res := sim.Run(tr, c, sim.Options{WarmupFrac: 0.2})
		b.ReportMetric(res.MissRatio(), "missRatio")
	}
	b.ReportMetric(float64(b.N)*float64(len(tr.Requests))/b.Elapsed().Seconds()/1e6, "Mreq/s")
}

// BenchmarkParallelEngineFig8 regenerates Figure 8 through the worker
// pool (Workers=0 → GOMAXPROCS) versus the serial path, at benchmark
// scale. On multi-core machines the parallel variant shows the engine's
// speedup; output is byte-identical either way.
func BenchmarkParallelEngineFig8(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			r, ok := exp.Lookup("fig8")
			if !ok {
				b.Fatal("fig8 not registered")
			}
			cfg := benchCfg()
			cfg.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ML kernel benchmarks: the gradient-boosting fit, tree inference and
// the trained-LRB access path that dominate the ML-heavy figures (fig4,
// fig10, fig12). The data dimensions mirror LRB's steady-state retrain:
// MaxTrain=8192 rows of NumFeatures log-scaled features, squared loss,
// 30 trees of depth 4.

// kernelBenchData builds the synthetic LRB-shaped training set shared by
// the kernel benchmarks.
func kernelBenchData() (*ml.Matrix, []float64) {
	rng := rand.New(rand.NewSource(42))
	const n = 8192
	X := &ml.Matrix{}
	y := make([]float64, n)
	row := make([]float64, lrb.NumFeatures)
	for i := range y {
		for j := range row {
			row[j] = rng.Float64() * 16 // log2-scaled feature range
		}
		X.AppendRow(row)
		y[i] = rng.Float64() * 34 // log2(distance+1) targets
	}
	return X, y
}

// lrbRetrainGBM mirrors the hyperparameters of LRB's periodic retrain.
func lrbRetrainGBM() *ml.GBM {
	return &ml.GBM{Squared: true, Trees: 30, Depth: 4, LR: 0.2, MinLeaf: 16}
}

func BenchmarkGBMFit(b *testing.B) {
	X, y := kernelBenchData()
	m := lrbRetrainGBM()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.FitRegression(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreePredict(b *testing.B) {
	X, y := kernelBenchData()
	t := &ml.RegressionTree{MaxDepth: 4, MinLeaf: 16}
	t.Fit(X, y)
	rows := X.Rows()
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += t.Predict(X.Row(i % rows))
	}
	_ = sink
}

// BenchmarkLRBAccessTrained measures the per-request cost of a warmed,
// trained LRB — feature extraction, sampling, labelling, periodic GBM
// retrains and sampled eviction all included, exactly the path the fig12
// grid replays.
func BenchmarkLRBAccessTrained(b *testing.B) {
	tr, err := scip.GenerateProfile(scip.CDNT, 0.001, 3)
	if err != nil {
		b.Fatal(err)
	}
	capBytes := gen.CDNT.CacheBytes(64<<30, 0.001)
	l := lrb.New(capBytes, lrb.WithSeed(1))
	reqs := tr.Requests
	for _, r := range reqs { // warm: fill, label and train
		l.Access(r)
	}
	if !l.Trained() {
		b.Fatal("LRB did not train during warmup")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Access(reqs[i%len(reqs)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mreq/s")
}

// BenchmarkShardedAccessStats measures the cost of the per-access stats
// instrumentation on the sharded front: the same parallel access pattern
// bare, with the lock-free counters attached (the access path itself is
// clock-free since the counters-only ObserveAccess), and with a
// driver-side latency ticker adding its one clock read per request — the
// three instrumentation levels a scip-load run can choose between.
func BenchmarkShardedAccessStats(b *testing.B) {
	for _, variant := range []string{"bare", "counters", "counters+ticker"} {
		b.Run(variant, func(b *testing.B) {
			c, err := shard.New("scip", 1<<24, 16, func(capBytes int64, s int) cache.Policy {
				return core.NewCache(capBytes, core.WithSeed(int64(s)+1), core.WithInterval(2000))
			})
			if err != nil {
				b.Fatal(err)
			}
			var lat *stats.Histogram
			if variant != "bare" {
				st := c.EnableStats()
				if variant == "counters+ticker" {
					lat = st.Latency()
				}
			}
			var ctr atomic.Uint64
			b.RunParallel(func(pb *testing.PB) {
				tick := stats.NewLatencyTicker(lat) // nil lat: no-op, no clock reads
				tick.Start()
				for pb.Next() {
					i := ctr.Add(1)
					c.Access(cache.Request{Time: int64(i), Key: i % 4096, Size: 512})
					tick.Tick()
				}
			})
		})
	}
}

// BenchmarkShardedAccessModes compares the three concurrency
// configurations of DESIGN.md §10 on one parallel access pattern:
// per-request mutex locking, mutex locking amortised over 64-request
// same-shard batches, and the goroutine-per-shard actor path fed the
// same batches. Decisions and counters are identical in all three
// (TestModeInvariance); only the synchronisation cost differs.
func BenchmarkShardedAccessModes(b *testing.B) {
	const batch = 64
	for _, m := range []struct {
		name  string
		mode  shard.Mode
		batch int
	}{
		{"mutex", shard.ModeMutex, 1},
		{"batched", shard.ModeMutex, batch},
		{"actor", shard.ModeActor, batch},
	} {
		b.Run(m.name, func(b *testing.B) {
			c, err := shard.New("scip", 1<<24, 16, func(capBytes int64, s int) cache.Policy {
				return core.NewCache(capBytes, core.WithSeed(int64(s)+1), core.WithInterval(2000))
			}, shard.WithMode(m.mode))
			if err != nil {
				b.Fatal(err)
			}
			c.EnableStats()
			defer c.Close()
			var ctr atomic.Uint64
			b.RunParallel(func(pb *testing.PB) {
				if m.batch <= 1 {
					for pb.Next() {
						i := ctr.Add(1)
						c.Access(cache.Request{Time: int64(i), Key: i % 4096, Size: 512})
					}
					return
				}
				// One pending batch per shard, as the replay drivers do.
				bufs := make([][]cache.Request, c.Shards())
				for pb.Next() {
					i := ctr.Add(1)
					req := cache.Request{Time: int64(i), Key: i % 4096, Size: 512}
					s := c.ShardIndex(req.Key)
					bufs[s] = append(bufs[s], req)
					if len(bufs[s]) == m.batch {
						c.AccessBatch(s, bufs[s], nil)
						bufs[s] = bufs[s][:0]
					}
				}
				for s, buf := range bufs {
					if len(buf) > 0 {
						c.AccessBatch(s, buf, nil)
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mreq/s")
		})
	}
}

// BenchmarkStatsSnapshot measures the lock-free Snapshot read path while
// counters are hot (the reporter's cost during a load run).
func BenchmarkStatsSnapshot(b *testing.B) {
	st := stats.New(64)
	for i := 0; i < 64; i++ {
		st.ObserveAccess(i, 512, i%2 == 0, 1<<20, int64(i))
		st.Latency().Observe(time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := st.Snapshot()
		_ = snap.MissRatio()
		_ = snap.OccupancySkew()
		_ = snap.LatencyQuantile(0.99)
	}
}
